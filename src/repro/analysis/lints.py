"""The endorsement audit: lint findings over the approximation-flow graph.

Lint catalog (stable codes; see ANALYSIS.md):

==========  ==========================================================
code        meaning
==========  ==========================================================
AF001       an endorsement launders approximate taint into control flow
AF002       an endorsement launders approximate taint into an array index
AF003       endorsed approximate data escapes into unchecked code
AF004       dead approximation: @Approx storage never touched by an
            approximate operation (energy risk without energy benefit)
AF005       wide endorsement: a single endorse site launders taint from
            many distinct approximate storage locations
AF006       wasted placement: an approximate DRAM-resident field/array
            whose stored values are never read accrues decay exposure
            for nothing
==========  ==========================================================

All findings are advisory (severity ``info`` or ``warning``): every
linted program has already passed the checker, so nothing here is a
type error.  AF001–AF003 rank severity by *taint width* — the number of
distinct approximate storage nodes in the endorsement's backward cone —
because an endorsement guarding one counter is routine (MonteCarlo's
single endorse) while one laundering a whole matrix into a branch is
exactly the risky pattern the paper warns about (Section 2.4).

Findings are deterministically ordered by (module, line, column, code).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.analysis.flowgraph import FlowGraph, FlowNode, build_flow_graph
from repro.core.checker import CheckResult, check_modules

__all__ = ["Finding", "LINT_CODES", "WIDE_ENDORSE_THRESHOLD", "run_lints"]

LINT_CODES: Dict[str, str] = {
    "AF001": "endorsement feeds control flow",
    "AF002": "endorsement feeds an array index",
    "AF003": "endorsed data escapes to unchecked code",
    "AF004": "dead approximation",
    "AF005": "wide endorsement",
    "AF006": "wasted approximate placement",
}

#: AF005 fires when one endorse site launders taint from at least this
#: many distinct approximate storage locations.
WIDE_ENDORSE_THRESHOLD = 8

#: AF001-AF003 escalate from info to warning at this taint width.
_WARN_WIDTH = 4


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint finding, deterministically sortable."""

    code: str
    severity: str  # "info" | "warning"
    module: str
    line: int
    column: int
    message: str
    site: str  # flow-graph node ident the finding anchors on
    width: int = 0

    @property
    def sort_key(self):
        return (self.module, self.line, self.column, self.code, self.site)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def __str__(self) -> str:
        return (
            f"{self.module}:{self.line}:{self.column}: {self.severity}: "
            f"[{self.code}] {self.message}"
        )


def _taint_width(graph: FlowGraph, endorse_id: str) -> int:
    """Distinct approximate storage locations laundered by one endorse."""
    cone = graph.backward([endorse_id])
    return sum(
        1
        for ident in cone
        if graph.nodes[ident].is_storage and graph.nodes[ident].may_approx
    )


def _severity(width: int) -> str:
    return "warning" if width >= _WARN_WIDTH else "info"


def _endorse_findings(graph: FlowGraph) -> List[Finding]:
    findings: List[Finding] = []
    for endorse_id in graph.endorsements():
        node = graph.nodes[endorse_id]
        width = _taint_width(graph, endorse_id)
        forward = graph.forward([endorse_id])
        reached = {
            graph.nodes[ident].label
            for ident in forward
            if graph.nodes[ident].is_sink
        }
        plural = "s" if width != 1 else ""
        if "control" in reached:
            findings.append(
                Finding(
                    "AF001",
                    _severity(width),
                    node.module,
                    node.line,
                    node.column,
                    f"endorsement gates control flow with taint from "
                    f"{width} approximate location{plural}",
                    endorse_id,
                    width,
                )
            )
        if "index" in reached:
            findings.append(
                Finding(
                    "AF002",
                    _severity(width),
                    node.module,
                    node.line,
                    node.column,
                    f"endorsement flows into an array index with taint from "
                    f"{width} approximate location{plural}",
                    endorse_id,
                    width,
                )
            )
        if "unchecked" in reached:
            findings.append(
                Finding(
                    "AF003",
                    _severity(width),
                    node.module,
                    node.line,
                    node.column,
                    f"endorsed value escapes to unchecked code with taint from "
                    f"{width} approximate location{plural}",
                    endorse_id,
                    width,
                )
            )
        if width >= WIDE_ENDORSE_THRESHOLD:
            findings.append(
                Finding(
                    "AF005",
                    "warning",
                    node.module,
                    node.line,
                    node.column,
                    f"wide endorsement: launders {width} approximate "
                    f"locations (threshold {WIDE_ENDORSE_THRESHOLD})",
                    endorse_id,
                    width,
                )
            )
    return findings


def _dead_approx_findings(graph: FlowGraph) -> List[Finding]:
    """AF004: approximate storage never reached by an approximate op.

    Approximate storage costs reliability (it is fault-injected) — if no
    approximate operation ever consumes or produces its values, the
    annotation buys energy on storage alone and the declaration deserves
    a second look.
    """
    findings: List[Finding] = []
    for ident in graph.storage_nodes():
        node = graph.nodes[ident]
        if not node.may_approx or node.qualifier == "context":
            # Context storage is precise on precise instances; leave it
            # to the owning class's callers.
            continue
        neighborhood = set(graph.forward([ident])) | set(graph.backward([ident]))
        touched = any(
            graph.nodes[other].kind == "op" and graph.nodes[other].may_approx
            for other in neighborhood
        )
        if not touched:
            findings.append(
                Finding(
                    "AF004",
                    "info",
                    node.module,
                    node.line,
                    node.column,
                    f"dead approximation: {node.label} is @Approx storage "
                    f"but no approximate operation ever touches it",
                    ident,
                )
            )
    return findings


def _wasted_placement_findings(graph: FlowGraph) -> List[Finding]:
    """AF006: approximate DRAM storage written but never read.

    A DRAM-resident holder is charged decay exposure for as long as it
    lives; if no stored value ever flows out of it (out-degree zero in
    the flow graph — every element is overwritten or dropped before a
    read), the approximate placement buys exposure without any consumer
    that could tolerate it.  Suggest the precise placement: same
    program, no decay risk, negligible energy difference because the
    values are never fetched.
    """
    findings: List[Finding] = []
    for ident in graph.storage_nodes():
        node = graph.nodes[ident]
        if not node.may_approx or node.qualifier == "context":
            continue
        if node.mechanism != "dram":
            continue
        if graph.in_degree(ident) >= 1 and graph.out_degree(ident) == 0:
            findings.append(
                Finding(
                    "AF006",
                    "warning",
                    node.module,
                    node.line,
                    node.column,
                    f"wasted placement: {node.label} lives in approximate "
                    f"DRAM but its stored values are never read; demote it "
                    f"to a precise placement",
                    ident,
                )
            )
    return findings


def run_lints(
    result: Optional[CheckResult] = None,
    graph: Optional[FlowGraph] = None,
    sources: Optional[Dict[str, str]] = None,
) -> List[Finding]:
    """Run the endorsement audit; returns deterministically sorted findings.

    Accepts a prebuilt graph, a check result, or raw sources (checked
    here).  Programs with checker errors cannot be linted — the graph
    would be built over ill-typed flows.
    """
    if graph is None:
        if result is None:
            if sources is None:
                raise ValueError("run_lints needs sources, a CheckResult, or a FlowGraph")
            result = check_modules(sources)
        if not result.ok:
            raise ValueError(f"cannot lint a program with checker errors: {result.codes()}")
        graph = build_flow_graph(result)
    findings = (
        _endorse_findings(graph)
        + _dead_approx_findings(graph)
        + _wasted_placement_findings(graph)
    )
    return sorted(findings, key=lambda f: f.sort_key)
