"""Static reliability bounds over the approximation-flow graph.

For each QoS-relevant output (an app's entry-function return value) the
analysis computes an **upper bound on the per-operation corruption
probability**: the chance that any single dynamic operation's
contribution to the output is disturbed by a stochastic hardware fault
under a given :class:`~repro.hardware.config.HardwareConfig` (the
paper's Table 2 rates).

Composition (union bound along all flow paths): every fault that can
disturb the output must land on some node of the output's backward
dependency cone — an approximate SRAM local, a DRAM-resident array or
field, or an approximate ALU/FPU operation (implicit flows through
endorsed conditions are part of the cone; see flowgraph.py).  Each such
node ``n`` contributes ``rate(n) * uses(n)`` where ``rate`` is the
per-access fault probability of its mechanism and ``uses`` counts its
static uses (in- plus out-degree, at least 1): one dynamic op touches at
most that many distinct (node, use) fault opportunities per executed
op.  The bound is the capped sum — crude, but sound in the direction
that matters and orders of magnitude tighter than 1.0 at the Mild and
Medium settings.

DRAM residency is not statically knowable, so by default the bound
charges each array/field holder a full
:data:`ASSUMED_RESIDENCY_SECONDS` of decay — generous against the
microsecond-per-op tick model (`seconds_per_tick`), and the reason
every array-heavy bound saturates to 1.0 at the Aggressive level.
Passing a :class:`~repro.analysis.profile.ResidencyProfile` (one
traced fault-free run; see profile.py) replaces the constant with the
measured per-container lifetime spans, which desaturates those bounds
while staying sound: no container outlives its run.  Deterministic FPU
mantissa truncation is *not* a stochastic fault and is excluded (it is
reported separately via ``fp_mantissa_bits``).

The **soundness check** replays PR-2 traced runs and asserts the
dynamically observed fault-impact frequency (stochastic faults per
executed op, :func:`observed_fault_impact`) never exceeds the static
bound.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.flowgraph import FlowGraph, build_flow_graph
from repro.apps import AppSpec, load_sources
from repro.core.checker import check_modules
from repro.hardware.config import AGGRESSIVE, MEDIUM, MILD, HardwareConfig
from repro.runtime.stats import RunStats

__all__ = [
    "ASSUMED_RESIDENCY_SECONDS",
    "BITS_PER_VALUE",
    "NodeContribution",
    "ReliabilityBound",
    "SoundnessRecord",
    "reliability_bound",
    "app_flow_graph",
    "app_reliability",
    "observed_fault_impact",
    "soundness_check",
]

#: Charged DRAM residency per array/field holder node (seconds).  One
#: simulated second is ~10^6 ops at ``seconds_per_tick = 1e-6`` — far
#: beyond any bundled workload, so decay is never under-charged.
ASSUMED_RESIDENCY_SECONDS = 1.0

#: Bits charged per stored value (the simulator's word width).
BITS_PER_VALUE = 64

#: Named hardware levels the CLI and campaigns iterate.
LEVELS: Dict[str, HardwareConfig] = {
    "mild": MILD,
    "medium": MEDIUM,
    "aggressive": AGGRESSIVE,
}


@dataclasses.dataclass(frozen=True)
class NodeContribution:
    """One flow-graph node's share of the bound."""

    ident: str
    mechanism: str
    rate: float
    uses: int
    contribution: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class ReliabilityBound:
    """The static bound for one output at one hardware level."""

    app: str
    output: str
    level: str
    bound: float
    saturated: bool
    cone_nodes: int
    approx_cone_nodes: int
    by_mechanism: Dict[str, float]
    top_contributors: Tuple[NodeContribution, ...]
    #: Deterministic precision loss (not part of the stochastic bound).
    fp_mantissa_bits: int

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "output": self.output,
            "level": self.level,
            "bound": self.bound,
            "saturated": self.saturated,
            "cone_nodes": self.cone_nodes,
            "approx_cone_nodes": self.approx_cone_nodes,
            "by_mechanism": dict(sorted(self.by_mechanism.items())),
            "top_contributors": [c.to_dict() for c in self.top_contributors],
            "fp_mantissa_bits": self.fp_mantissa_bits,
        }


@dataclasses.dataclass(frozen=True)
class SoundnessRecord:
    """One dynamic-vs-static comparison."""

    app: str
    level: str
    fault_seed: int
    observed: float
    bound: float

    @property
    def sound(self) -> bool:
        return self.observed <= self.bound

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["sound"] = self.sound
        return data


def node_rate(
    mechanism: str,
    config: HardwareConfig,
    residency_seconds: float = ASSUMED_RESIDENCY_SECONDS,
) -> float:
    """Per-access stochastic fault probability for one mechanism."""
    if mechanism == "sram":
        return config.sram_read_upset + config.sram_write_failure
    if mechanism == "dram":
        return min(
            1.0, BITS_PER_VALUE * config.dram_flip_per_second * residency_seconds
        )
    if mechanism in ("alu", "fpu"):
        return config.timing_error_prob
    return 0.0


def reliability_bound(
    graph: FlowGraph,
    output_id: str,
    config: HardwareConfig,
    app: str = "",
    level: str = "",
    residency_seconds: float = ASSUMED_RESIDENCY_SECONDS,
    top: int = 5,
    profile=None,
) -> ReliabilityBound:
    """Bound the per-op corruption probability of one output node.

    Only may-approximate nodes (qualifier ``approx`` or ``context``)
    contribute: precise state is never fault-injected by the simulator,
    mirroring the paper's hardware model.  Summation runs in sorted
    node-id order so the result is bit-identical across runs.

    ``profile`` (a :class:`~repro.analysis.profile.ResidencyProfile`)
    switches the DRAM residency charge from the flat
    ``residency_seconds`` constant to the measured per-container span
    of each node's label — per-node, so short-lived containers charge
    less than the run itself.
    """
    cone = graph.backward([output_id]) if output_id in graph.nodes else []
    contributions: List[NodeContribution] = []
    by_mechanism: Dict[str, float] = {}
    for ident in cone:  # already sorted
        node = graph.nodes[ident]
        if not node.may_approx:
            continue
        residency = (
            profile.node_residency_seconds(node)
            if profile is not None
            else residency_seconds
        )
        rate = node_rate(node.mechanism, config, residency)
        if rate == 0.0:
            continue
        uses = max(1, graph.in_degree(ident) + graph.out_degree(ident))
        contribution = rate * uses
        contributions.append(
            NodeContribution(ident, node.mechanism, rate, uses, contribution)
        )
        by_mechanism[node.mechanism] = (
            by_mechanism.get(node.mechanism, 0.0) + contribution
        )
    total = sum(c.contribution for c in contributions)  # sorted-ident order
    saturated = total >= 1.0
    ranked = sorted(
        contributions, key=lambda c: (-c.contribution, c.ident)
    )[: max(0, top)]
    approx_nodes = sum(1 for i in cone if graph.nodes[i].may_approx)
    return ReliabilityBound(
        app=app,
        output=output_id,
        level=level,
        bound=min(1.0, total),
        saturated=saturated,
        cone_nodes=len(cone),
        approx_cone_nodes=approx_nodes,
        by_mechanism=by_mechanism,
        top_contributors=tuple(ranked),
        fp_mantissa_bits=config.float_mantissa_bits,
    )


def app_output_id(spec: AppSpec) -> str:
    return f"return:{spec.entry_module}.{spec.entry_function}"


def app_flow_graph(spec: AppSpec) -> FlowGraph:
    """The checked approximation-flow graph of one app's sources.

    Shared by :func:`app_reliability` and the online tuner
    (:mod:`repro.tuner`), which evaluates bounds for many composed
    configs against one graph.
    """
    result = check_modules(load_sources(spec))
    if not result.ok:
        raise ValueError(f"{spec.name}: sources do not check: {result.codes()}")
    return build_flow_graph(result)


def app_reliability(
    spec: AppSpec,
    levels: Optional[Sequence[str]] = None,
    graph: Optional[FlowGraph] = None,
    profile=None,
) -> List[ReliabilityBound]:
    """Reliability bounds for one app's QoS output at the named levels.

    With ``profile`` (or the string ``"profiled"``, which builds one
    here) the DRAM residency charge comes from measured container
    lifetimes instead of the 1 s constant.
    """
    if graph is None:
        graph = app_flow_graph(spec)
    if profile == "profiled":
        from repro.analysis.profile import profile_app

        profile = profile_app(spec)
    names = list(levels) if levels is not None else list(LEVELS)
    bounds = []
    for name in names:
        config = LEVELS[name]
        bounds.append(
            reliability_bound(
                graph,
                app_output_id(spec),
                config,
                app=spec.name,
                level=name,
                profile=profile,
            )
        )
    return bounds


def observed_fault_impact(stats: RunStats) -> float:
    """Dynamically observed stochastic faults per executed operation.

    ``total_faults`` counts exactly the stochastic events (FU timing
    errors, SRAM read upsets and write failures, DRAM bit decay);
    deterministic mantissa truncation is excluded by construction.
    """
    return stats.total_faults / max(1, stats.ops_total)


def soundness_check(
    spec: AppSpec,
    levels: Optional[Sequence[str]] = None,
    fault_seeds: Sequence[int] = (1,),
    workload_seed: int = 0,
    profile=None,
) -> List[SoundnessRecord]:
    """Replay traced runs and compare observed fault impact to the bound."""
    from repro.observability.runner import traced_run

    if profile == "profiled":
        # Profile the same workload the replays run, so the measured
        # spans bound exactly the executions being checked.
        from repro.analysis.profile import profile_app

        profile = profile_app(spec, workload_seed)
    bounds = {b.level: b for b in app_reliability(spec, levels, profile=profile)}
    records = []
    for level in sorted(bounds):
        for fault_seed in fault_seeds:
            traced = traced_run(
                spec,
                LEVELS[level],
                fault_seed=fault_seed,
                workload_seed=workload_seed,
            )
            records.append(
                SoundnessRecord(
                    app=spec.name,
                    level=level,
                    fault_seed=fault_seed,
                    observed=observed_fault_impact(traced.stats),
                    bound=bounds[level].bound,
                )
            )
    return records
