"""Residency profiles: logical-cycle container lifetimes from PR-2 traces.

The reliability bound charges every DRAM-resident holder a residency
window of decay.  Statically that window is unknowable, so
:mod:`repro.analysis.reliability` assumes a generous flat constant
(:data:`~repro.analysis.reliability.ASSUMED_RESIDENCY_SECONDS`) — which
saturates every array-heavy bound to 1.0 at the Aggressive level even
though the bundled workloads run for a tenth of that.

A :class:`ResidencyProfile` replaces the constant with *measured* spans:
one traced run of the app under the fault-free ``BASELINE`` config
records, per heap container label, the maximum ``lifetime_ticks`` of
its ``energy.free`` events, plus the run's total logical ticks.  Both
are deterministic functions of (app, workload seed) — the baseline
machine injects no faults — so profiled bounds stay byte-identical
across runs.

Soundness is preserved: no container outlives the run, so charging a
flow-graph node the maximum observed lifetime of its label (falling
back to the whole run's ticks when the label never freed or the ring
buffer evicted its event) still over-approximates every value's true
residency.  The span only tightens the charge from "one second" to
"this workload's actual duration".
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.analysis.flowgraph import FlowNode

__all__ = ["ResidencyProfile", "profile_app"]


@dataclasses.dataclass(frozen=True)
class ResidencyProfile:
    """Measured per-label container lifetimes for one (app, workload)."""

    app: str
    workload_seed: int
    #: Total logical ticks of the profiled run (the residency ceiling).
    ticks: int
    #: Simulated seconds per logical tick (from the hardware config).
    seconds_per_tick: float
    #: Maximum observed ``lifetime_ticks`` per container label
    #: (``"array"`` for arrays, the class name for objects).
    label_span_ticks: Dict[str, int]

    @property
    def run_seconds(self) -> float:
        """The whole run's duration — the fallback residency charge."""
        return max(1, self.ticks) * self.seconds_per_tick

    def node_span_ticks(self, node: FlowNode) -> int:
        """The residency span (ticks) charged to one flow-graph node.

        Array allocation sites map to the shared ``"array"`` container
        label; ``field:{Class}.{attr}`` nodes map to their declaring
        class's label.  Nodes whose label was never observed fall back
        to the full run — an upper bound by construction.
        """
        span: Optional[int] = None
        if node.kind == "alloc":
            span = self.label_span_ticks.get("array")
        elif node.kind == "field" and node.ident.startswith("field:"):
            class_name = node.ident[len("field:"):].split(".", 1)[0]
            span = self.label_span_ticks.get(class_name)
        if span is None:
            span = self.ticks
        return max(1, span)

    def node_residency_seconds(self, node: FlowNode) -> float:
        """The node's charged DRAM residency, in simulated seconds."""
        return self.node_span_ticks(node) * self.seconds_per_tick

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "workload_seed": self.workload_seed,
            "ticks": self.ticks,
            "seconds_per_tick": self.seconds_per_tick,
            "label_span_ticks": dict(sorted(self.label_span_ticks.items())),
        }


def profile_app(spec, workload_seed: int = 0) -> ResidencyProfile:
    """One traced fault-free run -> the app's residency profile.

    The ``BASELINE`` config injects no faults, so the trace — tick
    count and container lifetimes — is a pure function of the workload
    seed, which keeps everything downstream (bounds, placement output,
    golden baselines) deterministic.
    """
    from repro.hardware.config import BASELINE
    from repro.observability.runner import traced_run

    traced = traced_run(
        spec, BASELINE, fault_seed=0, workload_seed=workload_seed
    )
    spans: Dict[str, int] = {}
    for event in traced.events:
        if event.kind != "energy.free":
            continue
        label = event.identity.rsplit("#", 1)[0]
        lifetime = int(event.extra.get("lifetime_ticks", 0))
        spans[label] = max(spans.get(label, 0), lifetime)
    return ResidencyProfile(
        app=spec.name,
        workload_seed=workload_seed,
        ticks=traced.stats.ticks,
        seconds_per_tick=BASELINE.seconds_per_tick,
        label_span_ticks=spans,
    )
