"""Static per-node energy and fault-exposure model for data placement.

The placement optimizer (:mod:`repro.analysis.placement`) searches over
*assignments*: which approximate-annotated storage sites to demote to
precise.  Evaluating a candidate assignment dynamically would cost a
simulation per step, so this module scores assignments statically, with
the same two quantities the dynamic side measures:

* **modeled energy** — the Section 5.4 composition
  (:mod:`repro.energy.model`) evaluated on *static* proxies for the
  run statistics: operation counts become flow-graph op-node weights
  (degree = static fan-in/out), SRAM byte-ticks become storage-node
  access weights, and DRAM byte-ticks become the profiled residency
  spans (:mod:`repro.analysis.profile`) of each array/field site;
* **fault exposure** — the PR-5 reliability bound of the QoS output,
  restricted to the nodes that remain *effectively approximate* under
  the assignment.

Effective approximateness is a forward reachability: a node can carry
approximate values only if it is may-approx in the flow graph *and*
some non-demoted approximate storage site reaches it through
may-approx nodes (laundering endorsements, being precise-qualified,
stop the propagation exactly as they do at run time).  Demoting a site
therefore shrinks the effective set monotonically, which gives the two
properties the optimizer (and the Hypothesis suite) relies on:

* the static bound never increases when a site is demoted;
* the modeled energy never decreases when a site is demoted.
"""

from __future__ import annotations

import dataclasses
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.flowgraph import FlowGraph
from repro.analysis.profile import ResidencyProfile
from repro.analysis.reliability import node_rate
from repro.energy.model import SERVER, EnergyParameters
from repro.hardware.config import HardwareConfig

__all__ = ["NodeCost", "PlacementCostModel"]


@dataclasses.dataclass(frozen=True)
class NodeCost:
    """One storage/op node's static weights under the cost model."""

    ident: str
    kind: str
    mechanism: str
    #: Static access weight (degree for SRAM/ops, residency ticks for
    #: DRAM holders).
    weight: float
    #: Per-access fault rate at the model's hardware level.
    rate: float
    #: ``rate * uses`` — the node's share of the reliability bound when
    #: it is effectively approximate.
    exposure: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class PlacementCostModel:
    """Scores placement assignments over one app's flow graph.

    An *assignment* is the set of storage-node idents demoted to
    precise; the empty set is the program as annotated.  All queries
    are deterministic (sorted traversals, pure arithmetic) and cached
    per assignment, because the greedy optimizer revisits neighbours.
    """

    def __init__(
        self,
        graph: FlowGraph,
        output_id: str,
        config: HardwareConfig,
        profile: ResidencyProfile,
        params: EnergyParameters = SERVER,
    ) -> None:
        self.graph = graph
        self.output_id = output_id
        self.config = config
        self.profile = profile
        self.params = params
        self._effective_cache: Dict[FrozenSet[str], FrozenSet[str]] = {}
        #: Storage sites that can seed approximateness (annotated or
        #: inferred approx storage; ``context`` is instantiation-driven
        #: and stays, conservatively, a seed).
        self.seed_sites: Tuple[str, ...] = tuple(
            ident
            for ident in graph.storage_nodes()
            if graph.nodes[ident].may_approx
        )

    # ------------------------------------------------------------------
    # Effective approximateness under an assignment
    # ------------------------------------------------------------------
    def effective_approx(self, demoted: AbstractSet[str]) -> FrozenSet[str]:
        """Nodes that may still hold approximate values.

        Forward reachability from the non-demoted approximate storage
        seeds, continuing only through may-approx nodes: a node whose
        static qualifier is precise (an endorsement result, a precise
        local) launders the flow at run time too, so propagation stops
        there.
        """
        key = frozenset(demoted)
        cached = self._effective_cache.get(key)
        if cached is not None:
            return cached
        frontier = sorted(s for s in self.seed_sites if s not in key)
        visited: Set[str] = set(frontier)
        while frontier:
            nxt: Set[str] = set()
            for ident in frontier:
                for succ in self.graph.successors(ident):
                    if succ in visited or succ in key:
                        # Demoted holders are precise at run time: they
                        # launder the flow exactly like an endorsement.
                        continue
                    if not self.graph.nodes[succ].may_approx:
                        continue
                    nxt.add(succ)
            visited |= nxt
            frontier = sorted(nxt)
        result = frozenset(visited)
        self._effective_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Per-node static weights
    # ------------------------------------------------------------------
    def _uses(self, ident: str) -> int:
        return max(
            1, self.graph.in_degree(ident) + self.graph.out_degree(ident)
        )

    def node_cost(self, ident: str) -> NodeCost:
        node = self.graph.nodes[ident]
        uses = self._uses(ident)
        if node.mechanism == "dram":
            weight = float(self.profile.node_span_ticks(node))
            rate = node_rate(
                "dram",
                self.config,
                self.profile.node_residency_seconds(node),
            )
        else:
            weight = float(uses)
            rate = node_rate(node.mechanism, self.config)
        return NodeCost(
            ident=ident,
            kind=node.kind,
            mechanism=node.mechanism,
            weight=weight,
            rate=rate,
            exposure=rate * uses,
        )

    # ------------------------------------------------------------------
    # The two objectives
    # ------------------------------------------------------------------
    def bound(self, demoted: AbstractSet[str]) -> float:
        """Static reliability bound of the output under an assignment."""
        if self.output_id not in self.graph.nodes:
            return 0.0
        effective = self.effective_approx(demoted)
        total = 0.0
        for ident in self.graph.backward([self.output_id]):  # sorted
            if ident not in effective:
                continue
            total += self.node_cost(ident).exposure
        return min(1.0, total)

    def energy(self, demoted: AbstractSet[str]) -> float:
        """Modeled normalised energy (1.0 = fully precise placement).

        The Section 5.4 composition over static fractions: approximate
        shares of DRAM residency weight, SRAM access weight, and
        int/fp execute energy, each discounted by the corresponding
        Table 2 saving exactly as :func:`repro.energy.model
        .estimate_energy` discounts the measured fractions.
        """
        effective = self.effective_approx(demoted)
        dram_total = dram_approx = 0.0
        sram_total = sram_approx = 0.0
        int_total = int_approx = 0.0
        fp_total = fp_approx = 0.0
        for ident in self.graph.node_ids():  # sorted
            node = self.graph.nodes[ident]
            is_approx = ident in effective
            if node.mechanism == "dram":
                weight = self.node_cost(ident).weight
                dram_total += weight
                if is_approx:
                    dram_approx += weight
            elif node.mechanism == "sram":
                weight = self.node_cost(ident).weight
                sram_total += weight
                if is_approx:
                    sram_approx += weight
            elif node.mechanism == "alu":
                weight = float(self._uses(ident))
                int_total += weight
                if is_approx:
                    int_approx += weight
            elif node.mechanism == "fpu":
                weight = float(self._uses(ident))
                fp_total += weight
                if is_approx:
                    fp_approx += weight

        params, config = self.params, self.config
        int_exec = params.int_op_units - params.fetch_decode_units
        fp_exec = params.fp_op_units - params.fetch_decode_units
        precise_ops = int_total * params.int_op_units + fp_total * params.fp_op_units
        if precise_ops > 0.0:
            int_cost = (
                int_total * params.fetch_decode_units
                + (int_total - int_approx) * int_exec
                + int_approx * int_exec * (1.0 - config.int_op_saving)
            )
            fp_cost = (
                fp_total * params.fetch_decode_units
                + (fp_total - fp_approx) * fp_exec
                + fp_approx * fp_exec * (1.0 - config.fp_op_saving)
            )
            instruction = (int_cost + fp_cost) / precise_ops
        else:
            instruction = 1.0
        sram_fraction = sram_approx / sram_total if sram_total > 0.0 else 0.0
        dram_fraction = dram_approx / dram_total if dram_total > 0.0 else 0.0
        sram = 1.0 - sram_fraction * config.sram_power_saving
        dram = 1.0 - dram_fraction * config.dram_power_saving
        cpu = (
            1.0 - params.sram_share_of_cpu
        ) * instruction + params.sram_share_of_cpu * sram
        return params.cpu_share_of_system * cpu + params.dram_share_of_system * dram

    # ------------------------------------------------------------------
    # Introspection for reports
    # ------------------------------------------------------------------
    def site_costs(self, idents: Optional[AbstractSet[str]] = None) -> List[NodeCost]:
        """Sorted per-site cost rows (all storage sites by default)."""
        chosen = sorted(idents) if idents is not None else list(self.seed_sites)
        return [self.node_cost(ident) for ident in chosen]
