"""Rendering for the analysis CLI (``repro lint`` / ``repro analyze``).

All JSON output is canonical — ``sort_keys=True``, two-space indent,
trailing newline — so committed baselines diff cleanly and two runs of
the same analysis produce byte-identical files.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.lints import Finding
from repro.analysis.reliability import ReliabilityBound, SoundnessRecord
from repro.analysis.inference import Suggestion
from repro.core.diagnostics import Diagnostic

__all__ = [
    "canonical_json",
    "lint_payload",
    "render_lint_text",
    "reliability_payload",
    "render_reliability_text",
    "placement_payload",
    "render_placement_text",
    "diagnostics_payload",
]

#: Version stamp for every machine-readable payload; bump on breaking
#: shape changes so baseline drift is explicit, never silent.
PAYLOAD_VERSION = 1


def canonical_json(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------------
# repro lint
# ----------------------------------------------------------------------
def lint_payload(
    app: str,
    findings: Sequence[Finding],
    suggestions: Sequence[Suggestion] = (),
) -> dict:
    return {
        "version": PAYLOAD_VERSION,
        "app": app,
        "findings": [f.to_dict() for f in findings],
        "suggestions": [s.to_dict() for s in suggestions],
    }


def render_lint_text(
    app: str,
    findings: Sequence[Finding],
    suggestions: Sequence[Suggestion] = (),
) -> str:
    lines = [f"{app}: {len(findings)} finding(s)"]
    for finding in findings:
        lines.append(f"  {finding}")
    if suggestions:
        lines.append(f"{app}: {len(suggestions)} validated relaxation(s)")
        for suggestion in suggestions:
            lines.append(f"  {suggestion}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# repro analyze reliability
# ----------------------------------------------------------------------
def reliability_payload(
    app: str,
    bounds: Sequence[ReliabilityBound],
    soundness: Optional[Sequence[SoundnessRecord]] = None,
) -> dict:
    payload: Dict = {
        "version": PAYLOAD_VERSION,
        "app": app,
        "bounds": [b.to_dict() for b in bounds],
    }
    if soundness is not None:
        payload["soundness"] = [r.to_dict() for r in soundness]
    return payload


def render_reliability_text(
    app: str,
    bounds: Sequence[ReliabilityBound],
    soundness: Optional[Sequence[SoundnessRecord]] = None,
) -> str:
    lines = [f"{app}: static per-op corruption bounds"]
    for bound in bounds:
        saturated = " (saturated)" if bound.saturated else ""
        lines.append(
            f"  {bound.level:10s} bound={bound.bound:.3e}{saturated}  "
            f"cone={bound.cone_nodes} nodes ({bound.approx_cone_nodes} approx)  "
            f"fp-mantissa={bound.fp_mantissa_bits}b"
        )
        for mechanism in sorted(bound.by_mechanism):
            lines.append(
                f"      {mechanism:5s} {bound.by_mechanism[mechanism]:.3e}"
            )
    if soundness:
        lines.append(f"{app}: dynamic soundness check")
        for record in soundness:
            verdict = "ok" if record.sound else "VIOLATION"
            lines.append(
                f"  {record.level:10s} seed={record.fault_seed} "
                f"observed={record.observed:.3e} <= bound={record.bound:.3e}  {verdict}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# repro analyze placement
# ----------------------------------------------------------------------
def placement_payload(app: str, plans, verifications=None) -> dict:
    """Canonical payload for one app's placement plans.

    ``plans`` is a sequence of :class:`~repro.analysis.placement
    .PlacementPlan` (one per hardware level); ``verifications`` the
    optional dynamic :class:`~repro.analysis.placement
    .PlacementVerification` records.  Verification results are kept out
    of the golden baselines (they depend on fault seeds), so the
    baseline shape is plans-only.
    """
    payload: Dict = {
        "version": PAYLOAD_VERSION,
        "app": app,
        "plans": [p.to_dict() for p in plans],
    }
    if verifications is not None:
        payload["verifications"] = [v.to_dict() for v in verifications]
    return payload


def render_placement_text(app: str, plans, verifications=None) -> str:
    lines = [f"{app}: data-placement plans"]
    for plan in plans:
        status = "feasible" if plan.feasible else "INFEASIBLE"
        lines.append(
            f"  {plan.level:10s} bound {plan.bound_before:.3e} -> "
            f"{plan.bound_after:.3e} (threshold {plan.threshold:.0e}, {status})  "
            f"energy {plan.energy_modeled_before:.4f} -> "
            f"{plan.energy_modeled_after:.4f}  "
            f"all-precise-dram {plan.energy_modeled_all_precise_dram:.4f}"
        )
        demotions = plan.demotions
        lines.append(
            f"      {len(plan.decisions)} site(s), {len(demotions)} demotion(s)"
        )
        for decision in demotions:
            lines.append(f"      {decision}")
    if verifications:
        lines.append(f"{app}: dynamic placement verification")
        for v in verifications:
            verdict = "ok" if v.accepted else "REJECTED"
            beat = "beats" if v.beats_measured else "does not beat"
            lines.append(
                f"  {v.level:10s} seed={v.fault_seed} check={v.check} {verdict}  "
                f"repairs={len(v.repair_demotions)}  "
                f"measured {v.energy_measured:.4f} {beat} "
                f"all-precise-dram {v.energy_measured_all_precise_dram:.4f}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# repro check --format json (shared diagnostic shape)
# ----------------------------------------------------------------------
def diagnostics_payload(path: str, ok: bool, diagnostics: Sequence[Diagnostic]) -> dict:
    return {
        "version": PAYLOAD_VERSION,
        "path": path,
        "ok": ok,
        "diagnostics": [
            {
                "code": d.code,
                "message": d.message,
                "line": d.line,
                "column": d.column,
                "module": d.module,
                "severity": d.severity.value,
            }
            for d in diagnostics
        ],
    }
