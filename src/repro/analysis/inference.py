"""Annotation inference: checker-validated ``@Approx`` relaxations.

The paper's annotation burden is manual (Table 3); this pass proposes
relaxations mechanically.  A *candidate* is any explicitly annotated
precise primitive declaration — a local, parameter, return type, or
field of bare type ``int``/``float``/``bool`` or ``list[...]`` thereof.

For each candidate the flow graph answers two questions statically:

1. **Must it stay precise?**  If the candidate's forward cone reaches a
   ``control``/``index``/``unchecked`` sink, relaxing it would need new
   endorsements; such candidates are skipped (the checker would reject
   them anyway — this pre-filter just avoids pointless re-checks).
2. **What must relax with it?**  Every explicitly annotated precise
   declaration in the forward cone receives the candidate's values, so
   the EnerJ flow rule forces it approximate too.  The candidate plus
   these companions form the *relaxation closure*.

Each closure is then validated the only way that actually counts: the
annotations are textually rewritten (``T`` -> ``Approx[T]``) and the
whole mutated program is re-run through :func:`check_modules`.  Only
closures that re-check cleanly are emitted.  The ``rand`` module is
never touched — the PRNG must stay exact for reproducibility (the same
reason the census excludes it).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flowgraph import FlowGraph, build_flow_graph
from repro.core.checker import CheckResult, check_modules

__all__ = ["Suggestion", "infer_relaxations"]

_PRIMITIVES = {"int", "float", "bool"}

#: Upper bound on checker re-runs per program.
MAX_CANDIDATES = 40


@dataclasses.dataclass(frozen=True)
class Candidate:
    """An explicitly annotated precise declaration that might relax."""

    ident: str  # flow-graph node ident
    module: str
    kind: str  # "local" | "param" | "return" | "field"
    name: str  # variable/parameter/field name, or function name for returns
    annotation: ast.expr
    line: int
    column: int

    @property
    def sort_key(self):
        return (self.module, self.line, self.column, self.name)


@dataclasses.dataclass(frozen=True)
class Suggestion:
    """One validated relaxation: a primary declaration plus its closure."""

    module: str
    line: int
    column: int
    kind: str
    name: str
    current: str
    proposed: str
    #: Declarations that must relax together with the primary one
    #: ("module:line:column name" labels, sorted).
    companions: Tuple[str, ...]
    validated: bool

    @property
    def sort_key(self):
        return (self.module, self.line, self.column, self.name)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self) | {"companions": list(self.companions)}

    def __str__(self) -> str:
        extra = f" (with {len(self.companions)} companion(s))" if self.companions else ""
        return (
            f"{self.module}:{self.line}:{self.column}: {self.kind} {self.name}: "
            f"{self.current} -> {self.proposed}{extra}"
        )


def _annotation_eligible(node: Optional[ast.expr]) -> bool:
    """Bare ``int``/``float``/``bool`` or ``list`` of those — no qualifiers."""
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in _PRIMITIVES
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
        if node.value.id in ("list", "List"):
            return _annotation_eligible(node.slice)
    return False


def _collect_candidates(
    modules: Dict[str, ast.Module], skip_modules: Set[str]
) -> Dict[str, Candidate]:
    """All eligible declarations keyed by flow-graph node ident."""
    candidates: Dict[str, Candidate] = {}

    def add(ident: str, module: str, kind: str, name: str, annotation: ast.expr) -> None:
        if ident not in candidates:
            candidates[ident] = Candidate(
                ident,
                module,
                kind,
                name,
                annotation,
                annotation.lineno,
                annotation.col_offset,
            )

    def visit_function(module: str, fn: ast.FunctionDef, qualname: str) -> None:
        for arg in list(fn.args.posonlyargs) + list(fn.args.args):
            if arg.arg == "self":
                continue
            if _annotation_eligible(arg.annotation):
                add(
                    f"local:{module}.{qualname}.{arg.arg}",
                    module,
                    "param",
                    arg.arg,
                    arg.annotation,
                )
        if _annotation_eligible(fn.returns):
            add(f"return:{module}.{qualname}", module, "return", fn.name, fn.returns)
        for stmt in ast.walk(fn):
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if _annotation_eligible(stmt.annotation):
                    add(
                        f"local:{module}.{qualname}.{stmt.target.id}",
                        module,
                        "local",
                        stmt.target.id,
                        stmt.annotation,
                    )

    for module in sorted(modules):
        if module in skip_modules:
            continue
        tree = modules[module]
        for stmt in tree.body:
            if isinstance(stmt, ast.FunctionDef):
                visit_function(module, stmt, stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, ast.FunctionDef):
                        visit_function(module, item, f"{stmt.name}.{item.name}")
                    elif isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        if _annotation_eligible(item.annotation):
                            add(
                                f"field:{stmt.name}.{item.target.id}",
                                module,
                                "field",
                                item.target.id,
                                item.annotation,
                            )
    return candidates


def _closure(
    graph: FlowGraph, candidates: Dict[str, Candidate], root: str
) -> Optional[List[Candidate]]:
    """The relaxation closure of ``root``, or None if it must stay precise.

    ``None`` means the forward cone reaches a precision-mandatory sink
    (control flow, array index, unchecked escape) or flows into precise
    storage we cannot rewrite (an unannotated parameter or a foreign
    module's declaration).
    """
    cone = graph.forward([root])
    closure = [candidates[root]]
    for ident in cone:
        if ident == root:
            continue
        node = graph.nodes[ident]
        if node.is_sink:
            return None
        if node.may_approx or node.qualifier == "top":
            continue  # already approximate: nothing to rewrite
        if ident in candidates:
            closure.append(candidates[ident])
            continue
        if node.kind == "param":
            # A precise parameter outside the candidate set (unannotated,
            # qualified, or in a skipped module) would reject the flow.
            return None
        if node.kind == "return" and node.qualifier == "precise":
            # Returns only appear for non-void functions; a non-candidate
            # precise primitive return cannot be rewritten.  Reference/
            # array returns adapt, so only block primitive-ish ones:
            # mechanism is "none" either way, so be conservative.
            return None
        # Precise locals without annotations re-infer from their values;
        # precise ops re-derive; fields are always annotated (so always
        # in `candidates` when eligible).
        if node.kind == "field":
            return None
    return closure


def _mutate_sources(
    sources: Dict[str, str], closure: Sequence[Candidate]
) -> Optional[Dict[str, str]]:
    """Rewrite each closure annotation ``T`` -> ``Approx[T]`` textually."""
    by_module: Dict[str, List[Candidate]] = {}
    for cand in closure:
        by_module.setdefault(cand.module, []).append(cand)
    mutated = dict(sources)
    for module, cands in by_module.items():
        lines = sources[module].splitlines(keepends=True)
        # Apply bottom-up so earlier spans stay valid.
        for cand in sorted(cands, key=lambda c: (-c.annotation.lineno, -c.annotation.col_offset)):
            ann = cand.annotation
            if ann.end_lineno != ann.lineno or ann.end_col_offset is None:
                return None
            row = lines[ann.lineno - 1]
            start, end = ann.col_offset, ann.end_col_offset
            lines[ann.lineno - 1] = (
                row[:start] + "Approx[" + row[start:end] + "]" + row[end:]
            )
        mutated[module] = "".join(lines)
    return mutated


def infer_relaxations(
    sources: Dict[str, str],
    result: Optional[CheckResult] = None,
    graph: Optional[FlowGraph] = None,
    skip_modules: Sequence[str] = ("rand",),
    max_candidates: int = MAX_CANDIDATES,
) -> List[Suggestion]:
    """Propose checker-validated ``@Approx`` relaxations for a program.

    Returns only *validated* suggestions (mutated program re-checks
    clean), sorted by (module, line, column, name).
    """
    if result is None:
        result = check_modules(sources)
    if not result.ok:
        raise ValueError(f"cannot infer over a program with errors: {result.codes()}")
    if graph is None:
        graph = build_flow_graph(result)

    candidates = _collect_candidates(result.modules, set(skip_modules))
    suggestions: List[Suggestion] = []
    ordered = sorted(candidates.values(), key=lambda c: c.sort_key)
    budget = max_candidates
    for candidate in ordered:
        if candidate.ident not in graph.nodes:
            continue  # never used; relaxing buys nothing
        if graph.nodes[candidate.ident].may_approx:
            continue
        if budget <= 0:
            break
        closure = _closure(graph, candidates, candidate.ident)
        if closure is None:
            continue
        mutated = _mutate_sources(sources, closure)
        if mutated is None:
            continue
        budget -= 1
        recheck = check_modules(mutated)
        if not recheck.ok:
            continue
        source_line = sources[candidate.module].splitlines()[candidate.line - 1]
        current = source_line[candidate.annotation.col_offset : candidate.annotation.end_col_offset]
        companions = tuple(
            sorted(
                f"{c.module}:{c.line}:{c.column} {c.name}"
                for c in closure
                if c.ident != candidate.ident
            )
        )
        suggestions.append(
            Suggestion(
                module=candidate.module,
                line=candidate.line,
                column=candidate.column,
                kind=candidate.kind,
                name=candidate.name,
                current=current,
                proposed=f"Approx[{current}]",
                companions=companions,
                validated=True,
            )
        )
    return sorted(suggestions, key=lambda s: s.sort_key)
