"""Interprocedural approximation-flow graph (analysis pass 3).

The checker (:mod:`repro.core.checker`) verifies EnerJ's isolation
property locally and records per-node *facts*; this module consumes a
:class:`~repro.core.checker.CheckResult` and stitches those facts into a
whole-program def-use graph:

* **storage nodes** — one per local/parameter (flow-insensitive: every
  binding of ``fn``'s local ``x`` is the same node), per class field
  (class-global: all instances alias), per array allocation site, and
  one ``return`` node per function;
* **operation nodes** — one per arithmetic/comparison/conversion/math
  fact the instrumenter would rewrite;
* **endorsement nodes** — one per ``endorse(...)`` site; taint flows
  *through* an endorsement (its inputs stay in the graph) even though
  the checker launders the qualifier;
* **sink nodes** — ``control`` (if/while/ternary/assert conditions and
  ``range`` bounds), ``index`` (subscript indices) and ``unchecked``
  (arguments escaping to un-checked code such as ``print`` or unknown
  callees).

Edges follow value flow: operand -> operation -> stored target, argument
-> parameter, returned value -> return node -> call site.  Array-typed
arguments additionally get a reverse (alias) edge so element writes in
the callee reach the caller's view of the array.  *Implicit* flows are
tracked too: any store executed under a condition whose value derives
from approximate data gets an edge from the condition's sources — this
is what connects MonteCarlo's precise ``under_curve`` counter (and hence
its output) to the approximate coordinates that gate it.

Everything is deterministic: node identifiers are derived from source
positions and qualified names, adjacency is kept in sorted order, and
reachability visits nodes in sorted order, so two runs over the same
program produce bit-identical graphs regardless of hash seeds.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.annotations import APPROX_SUFFIX
from repro.core.checker import CheckResult
from repro.core.declarations import ClassInfo, FunctionSig, parse_annotation
from repro.core.diagnostics import DiagnosticSink
from repro.core.qualifiers import APPROX, CONTEXT, PRECISE, TOP, Qualifier
from repro.core.types import QualifiedType, primitive, reference

__all__ = ["FlowNode", "FlowGraph", "build_flow_graph"]

#: Node kinds that denote stored program state (lints and the reliability
#: bound treat these as fault-bearing storage).
STORAGE_KINDS = frozenset({"local", "param", "field", "alloc"})

#: Sink kinds (lint queries).
SINK_KINDS = frozenset({"control", "index", "unchecked"})

#: Qualifier precedence when merging re-bindings of the same node:
#: once possibly approximate, always possibly approximate.
_QUAL_RANK = {"approx": 3, "context": 2, "top": 1, "precise": 0}


@dataclasses.dataclass
class FlowNode:
    """One vertex of the approximation-flow graph."""

    ident: str
    kind: str  # local|param|field|return|alloc|op|endorse|upcast|new|sink
    module: str
    line: int
    column: int
    qualifier: str  # precise|approx|context|top
    mechanism: str  # sram|dram|alu|fpu|none
    label: str

    @property
    def is_storage(self) -> bool:
        return self.kind in STORAGE_KINDS

    @property
    def is_sink(self) -> bool:
        return self.kind == "sink"

    @property
    def may_approx(self) -> bool:
        """Whether values here can be approximate at run time."""
        return self.qualifier in ("approx", "context")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class FlowGraph:
    """A deterministic directed graph over :class:`FlowNode` vertices."""

    def __init__(self) -> None:
        self.nodes: Dict[str, FlowNode] = {}
        self._succ: Dict[str, Set[str]] = {}
        self._pred: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        ident: str,
        kind: str,
        module: str,
        line: int,
        column: int,
        qualifier: str,
        mechanism: str,
        label: str,
    ) -> str:
        existing = self.nodes.get(ident)
        if existing is None:
            self.nodes[ident] = FlowNode(
                ident, kind, module, line, column, qualifier, mechanism, label
            )
            self._succ.setdefault(ident, set())
            self._pred.setdefault(ident, set())
            return ident
        # Merge re-bindings: keep the first source position, widen the
        # qualifier (approx wins), keep the first concrete mechanism.
        if _QUAL_RANK.get(qualifier, 0) > _QUAL_RANK.get(existing.qualifier, 0):
            existing.qualifier = qualifier
        if existing.mechanism == "none" and mechanism != "none":
            existing.mechanism = mechanism
        return ident

    def add_edge(self, src: str, dst: str) -> None:
        if src == dst:
            return
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"edge endpoints must exist: {src} -> {dst}")
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    # ------------------------------------------------------------------
    # Queries (all outputs sorted for determinism)
    # ------------------------------------------------------------------
    def successors(self, ident: str) -> List[str]:
        return sorted(self._succ.get(ident, ()))

    def predecessors(self, ident: str) -> List[str]:
        return sorted(self._pred.get(ident, ()))

    def out_degree(self, ident: str) -> int:
        return len(self._succ.get(ident, ()))

    def in_degree(self, ident: str) -> int:
        return len(self._pred.get(ident, ()))

    def node_ids(self) -> List[str]:
        return sorted(self.nodes)

    def edges(self) -> List[Tuple[str, str]]:
        return sorted(
            (src, dst) for src, dsts in self._succ.items() for dst in dsts
        )

    def _reach(self, roots: Iterable[str], adjacency: Dict[str, Set[str]]) -> List[str]:
        frontier = sorted(set(roots) & set(self.nodes))
        seen: Set[str] = set(frontier)
        while frontier:
            nxt: Set[str] = set()
            for ident in frontier:
                nxt.update(adjacency.get(ident, ()))
            frontier = sorted(nxt - seen)
            seen.update(frontier)
        return sorted(seen)

    def forward(self, roots: Iterable[str]) -> List[str]:
        """All nodes reachable from ``roots`` (inclusive), sorted."""
        return self._reach(roots, self._succ)

    def backward(self, roots: Iterable[str]) -> List[str]:
        """All nodes that reach ``roots`` (inclusive), sorted."""
        return self._reach(roots, self._pred)

    def sinks(self, label: Optional[str] = None) -> List[str]:
        """Sink node idents, optionally restricted to one sink label."""
        out = []
        for ident in self.node_ids():
            node = self.nodes[ident]
            if node.is_sink and (label is None or node.label == label):
                out.append(ident)
        return out

    def storage_nodes(self) -> List[str]:
        return [i for i in self.node_ids() if self.nodes[i].is_storage]

    def endorsements(self) -> List[str]:
        return [i for i in self.node_ids() if self.nodes[i].kind == "endorse"]

    def to_dict(self) -> dict:
        return {
            "nodes": [self.nodes[i].to_dict() for i in self.node_ids()],
            "edges": [list(edge) for edge in self.edges()],
        }


# ----------------------------------------------------------------------
# Qualifier / mechanism classification
# ----------------------------------------------------------------------
def _qual_name(qualifier: Qualifier) -> str:
    if qualifier is APPROX:
        return "approx"
    if qualifier is CONTEXT:
        return "context"
    if qualifier is TOP:
        return "top"
    return "precise"


def _storage_profile(declared: QualifiedType) -> Tuple[str, str]:
    """(qualifier, mechanism) for a stored value of the given type.

    Primitive locals live in SRAM; array *elements* live in the DRAM
    heap, so an array-holding node carries its element qualifier and the
    ``dram`` mechanism (each holder over-counts residency, which is
    sound for an upper bound).  Plain references carry no storage of
    their own — their fields are separate nodes.
    """
    if declared.is_primitive:
        return _qual_name(declared.qualifier), "sram"
    if declared.is_array and declared.element is not None:
        element = declared.element
        if element.is_primitive:
            return _qual_name(element.qualifier), "dram"
        return _qual_name(element.qualifier), "none"
    if declared.is_reference:
        return _qual_name(declared.qualifier), "none"
    return "precise", "none"


def _op_mechanism(kind: str) -> str:
    return "fpu" if kind == "float" else "alu"


def _fact_qual(flag) -> str:
    if flag is True:
        return "approx"
    if flag == "context":
        return "context"
    return "precise"


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
class _GraphBuilder:
    """Walks checked function bodies and emits graph nodes/edges.

    Mirrors the checker's supported statement/expression subset; the
    checker has already rejected anything outside it, so unknown shapes
    here simply contribute no flow.
    """

    def __init__(self, result: CheckResult) -> None:
        self.result = result
        self.decls = result.declarations
        self.graph = FlowGraph()
        self._module = ""
        self._fn = ""  # qualified function name within the module
        self._sig: Optional[FunctionSig] = None
        self._owner: Optional[ClassInfo] = None
        self._locals: Dict[str, QualifiedType] = {}
        #: Stack of control-dependency source lists (implicit flows).
        self._control: List[List[str]] = []
        self._math_names: Set[str] = set()

    # -- identifiers ----------------------------------------------------
    def _site(self, node: ast.AST) -> str:
        return f"{self._module}:{getattr(node, 'lineno', 0)}:{getattr(node, 'col_offset', 0)}"

    def _local_id(self, name: str) -> str:
        return f"local:{self._module}.{self._fn}.{name}"

    def _return_id(self, module: str, fn: str) -> str:
        return f"return:{module}.{fn}"

    # -- node helpers ---------------------------------------------------
    def _ensure_local(
        self, name: str, declared: QualifiedType, node: ast.AST, kind: str = "local"
    ) -> str:
        qualifier, mechanism = _storage_profile(declared)
        ident = self._local_id(name)
        self.graph.add_node(
            ident,
            kind,
            self._module,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            qualifier,
            mechanism,
            f"{self._fn}.{name}",
        )
        self._locals[name] = declared
        return ident

    def _field_node(self, class_name: str, attr: str, node: ast.AST) -> Optional[str]:
        """The class-global node for a field, keyed by its declaring class."""
        info = self.decls.lookup_class(class_name)
        declaring = None
        while info is not None:
            if attr in info.fields:
                declaring = info
                break
            info = self.decls.lookup_class(info.base) if info.base else None
        if declaring is None:
            return None
        declared = declaring.fields[attr]
        qualifier, mechanism = _storage_profile(declared)
        if declared.is_primitive:
            mechanism = "dram"  # object fields live in the heap
        ident = f"field:{declaring.name}.{attr}"
        self.graph.add_node(
            ident,
            "field",
            declaring.module,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            qualifier,
            mechanism,
            f"{declaring.name}.{attr}",
        )
        return ident

    def _sink(self, label: str, node: ast.AST, sources: Sequence[str]) -> None:
        if not sources:
            return
        ident = f"{label}:{self._site(node)}"
        self.graph.add_node(
            ident,
            "sink",
            self._module,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            "precise",
            "none",
            label,
        )
        for src in sorted(set(sources)):
            self.graph.add_edge(src, ident)

    def _op_node(self, node: ast.AST, fact: dict, sources: Sequence[str]) -> str:
        role = fact["role"]
        kind = fact.get("kind", "float")
        name = fact.get("op") or fact.get("fn") or role
        mechanism = "fpu" if role == "math" else _op_mechanism(kind)
        ident = f"op:{self._site(node)}:{name}"
        self.graph.add_node(
            ident,
            "op",
            self._module,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            _fact_qual(fact.get("approx")),
            mechanism,
            f"{role} {name}",
        )
        for src in sorted(set(sources)):
            self.graph.add_edge(src, ident)
        return ident

    def _function_nodes(self, sig: FunctionSig, qualname: str) -> Tuple[List[str], Optional[str]]:
        """Parameter node idents and the return node ident (or None)."""
        saved_module, saved_fn = self._module, self._fn
        self._module, self._fn = sig.module, qualname
        params = []
        for pname, ptype in sig.params:
            qualifier, mechanism = _storage_profile(ptype)
            ident = self._local_id(pname)
            self.graph.add_node(
                ident,
                "param",
                sig.module,
                sig.node.lineno,
                sig.node.col_offset,
                qualifier,
                mechanism,
                f"{qualname}.{pname}",
            )
            params.append(ident)
        ret = None
        if not sig.returns.is_void:
            qualifier, mechanism = _storage_profile(sig.returns)
            ret = self._return_id(sig.module, qualname)
            self.graph.add_node(
                ret,
                "return",
                sig.module,
                sig.node.lineno,
                sig.node.col_offset,
                qualifier,
                "none",
                f"{qualname} return",
            )
        self._module, self._fn = saved_module, saved_fn
        return params, ret

    @staticmethod
    def _qualname(sig: FunctionSig) -> str:
        return f"{sig.owner}.{sig.name}" if sig.owner else sig.name

    def _type_of(self, node: ast.expr) -> Optional[QualifiedType]:
        return self.result.types.get(id(node))

    # -- entry points ---------------------------------------------------
    def build(self) -> FlowGraph:
        for module_name in sorted(self.result.modules):
            tree = self.result.modules[module_name]
            self._module = module_name
            self._math_names = {
                alias.asname or "math"
                for stmt in ast.walk(tree)
                if isinstance(stmt, ast.Import)
                for alias in stmt.names
                if alias.name == "math"
            }
            for stmt in tree.body:
                if isinstance(stmt, ast.FunctionDef):
                    sig = self.decls.lookup_function(stmt.name)
                    if sig is not None and sig.node is stmt:
                        self._build_function(sig)
                elif isinstance(stmt, ast.ClassDef):
                    info = self.decls.lookup_class(stmt.name)
                    if info is not None and info.node is stmt:
                        for method in info.methods.values():
                            self._build_function(method, owner=info)
        return self.graph

    def _build_function(self, sig: FunctionSig, owner: Optional[ClassInfo] = None) -> None:
        self._module = sig.module
        self._fn = self._qualname(sig)
        self._sig = sig
        self._owner = owner
        self._locals = {}
        self._control = []
        params, _ = self._function_nodes(sig, self._fn)
        for (pname, ptype), ident in zip(sig.params, params):
            self._locals[pname] = ptype
        if owner is not None:
            self._locals["self"] = reference(owner.name, sig.receiver_qualifier or PRECISE)
        self._block(sig.node.body)
        self._sig = None
        self._owner = None

    # -- statements -----------------------------------------------------
    def _block(self, stmts: List[ast.stmt]) -> None:
        for stmt in stmts:
            handler = getattr(self, f"_stmt_{type(stmt).__name__}", None)
            if handler is not None:
                handler(stmt)

    def _control_sources(self) -> List[str]:
        out: List[str] = []
        for frame in self._control:
            out.extend(frame)
        return out

    def _store_local(self, name: str, declared: QualifiedType, node: ast.AST, sources: Sequence[str]) -> str:
        ident = self._ensure_local(name, declared, node)
        for src in sorted(set(list(sources) + self._control_sources())):
            self.graph.add_edge(src, ident)
        return ident

    def _stmt_AnnAssign(self, stmt: ast.AnnAssign) -> None:
        if not isinstance(stmt.target, ast.Name):
            return
        throwaway = DiagnosticSink()
        in_approximable = bool(self._owner and self._owner.approximable)
        declared = parse_annotation(
            stmt.annotation, throwaway, self._module, in_approximable=in_approximable
        )
        sources = self._expr(stmt.value) if stmt.value is not None else []
        self._store_local(stmt.target.id, declared, stmt.target, sources)

    def _stmt_Assign(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        sources = self._expr(stmt.value)
        if isinstance(target, ast.Name):
            declared = self._locals.get(target.id)
            if declared is None:
                declared = self._type_of(stmt.value)
            if declared is None:
                declared = reference("dynamic", PRECISE)
            self._store_local(target.id, declared, target, sources)
            return
        if isinstance(target, ast.Subscript):
            self._store_subscript(target, sources)
            return
        if isinstance(target, ast.Attribute):
            self._store_attribute(target, sources)
            return
        if isinstance(target, ast.Tuple):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self._store_local(
                        element.id, reference("dynamic", PRECISE), element, sources
                    )

    def _stmt_AugAssign(self, stmt: ast.AugAssign) -> None:
        value_sources = self._expr(stmt.value)
        target = stmt.target
        fact = self.result.facts.get(id(stmt))
        if isinstance(target, ast.Name):
            declared = self._locals.get(target.id)
            if declared is None:
                return
            target_ident = self._ensure_local(target.id, declared, target)
            read_sources = [target_ident]
        elif isinstance(target, ast.Subscript):
            read_sources = self._expr_Subscript(target)
            target_ident = None
        elif isinstance(target, ast.Attribute):
            read_sources = self._expr_Attribute(target)
            target_ident = None
        else:
            return
        combined = read_sources + value_sources
        if fact is not None and fact.get("role") in ("binop", "compare"):
            combined = [self._op_node(stmt, fact, combined)]
        if isinstance(target, ast.Name):
            self._store_local(target.id, self._locals[target.id], target, combined)
        elif isinstance(target, ast.Subscript):
            self._store_subscript(target, combined)
        elif isinstance(target, ast.Attribute):
            self._store_attribute(target, combined)

    def _store_subscript(self, target: ast.Subscript, sources: Sequence[str]) -> None:
        container = self._expr(target.value)
        index_sources = self._expr(target.slice)
        self._sink("index", target.slice, index_sources)
        for holder in container:
            for src in sorted(set(list(sources) + self._control_sources())):
                self.graph.add_edge(src, holder)

    def _store_attribute(self, target: ast.Attribute, sources: Sequence[str]) -> None:
        receiver_sources = self._expr(target.value)
        receiver_type = self._type_of(target.value)
        field = None
        if receiver_type is not None and receiver_type.is_reference:
            field = self._field_node(receiver_type.name, target.attr, target)
        if field is None:
            return
        for src in sorted(set(list(sources) + self._control_sources() + receiver_sources)):
            self.graph.add_edge(src, field)

    def _stmt_If(self, stmt: ast.If) -> None:
        sources = self._expr(stmt.test)
        self._sink("control", stmt.test, sources)
        self._control.append(sources)
        self._block(stmt.body)
        self._block(stmt.orelse)
        self._control.pop()

    def _stmt_While(self, stmt: ast.While) -> None:
        sources = self._expr(stmt.test)
        self._sink("control", stmt.test, sources)
        self._control.append(sources)
        self._block(stmt.body)
        self._block(stmt.orelse)
        self._control.pop()

    def _stmt_For(self, stmt: ast.For) -> None:
        if not isinstance(stmt.target, ast.Name):
            return
        iter_node = stmt.iter
        control: List[str] = []
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "range"
        ):
            for arg in iter_node.args:
                bound_sources = self._expr(arg)
                self._sink("control", arg, bound_sources)
                control.extend(bound_sources)
            self._ensure_local(stmt.target.id, primitive("int"), stmt.target)
        else:
            iterable_sources = self._expr(iter_node)
            iterable_type = self._type_of(iter_node)
            if iterable_type is not None and iterable_type.is_array and iterable_type.element is not None:
                self._store_local(
                    stmt.target.id, iterable_type.element, stmt.target, iterable_sources
                )
            else:
                self._store_local(
                    stmt.target.id, reference("dynamic", PRECISE), stmt.target, iterable_sources
                )
        self._control.append(control)
        self._block(stmt.body)
        self._block(stmt.orelse)
        self._control.pop()

    def _stmt_Return(self, stmt: ast.Return) -> None:
        if self._sig is None or stmt.value is None:
            return
        sources = self._expr(stmt.value)
        if self._sig.returns.is_void:
            return
        ret = self._return_id(self._module, self._fn)
        if ret not in self.graph.nodes:
            return
        for src in sorted(set(sources + self._control_sources())):
            self.graph.add_edge(src, ret)

    def _stmt_Expr(self, stmt: ast.Expr) -> None:
        self._expr(stmt.value)

    def _stmt_Assert(self, stmt: ast.Assert) -> None:
        sources = self._expr(stmt.test)
        self._sink("control", stmt.test, sources)
        if stmt.msg is not None:
            self._expr(stmt.msg)

    def _stmt_Raise(self, stmt: ast.Raise) -> None:
        if stmt.exc is not None:
            self._expr(stmt.exc)

    def _stmt_Try(self, stmt: ast.Try) -> None:
        self._block(stmt.body)
        for handler in stmt.handlers:
            self._block(handler.body)
        self._block(stmt.orelse)
        self._block(stmt.finalbody)

    # -- expressions ----------------------------------------------------
    def _expr(self, node: Optional[ast.expr]) -> List[str]:
        if node is None:
            return []
        handler = getattr(self, f"_expr_{type(node).__name__}", None)
        if handler is None:
            return []
        return handler(node)

    def _expr_Constant(self, node: ast.Constant) -> List[str]:
        return []

    def _expr_Name(self, node: ast.Name) -> List[str]:
        if node.id in self._locals:
            declared = self._locals[node.id]
            return [self._ensure_local(node.id, declared, node)]
        return []

    def _expr_BinOp(self, node: ast.BinOp) -> List[str]:
        left = self._expr(node.left)
        right = self._expr(node.right)
        fact = self.result.facts.get(id(node))
        if fact is not None and fact.get("role") in ("binop", "compare"):
            return [self._op_node(node, fact, left + right)]
        if fact is not None and fact.get("role") == "alloc":
            return [self._alloc_node(node, fact, left + right)]
        return left + right

    def _expr_UnaryOp(self, node: ast.UnaryOp) -> List[str]:
        operand = self._expr(node.operand)
        fact = self.result.facts.get(id(node))
        if fact is not None and fact.get("role") == "unop":
            return [self._op_node(node, fact, operand)]
        return operand

    def _expr_Compare(self, node: ast.Compare) -> List[str]:
        sources = self._expr(node.left)
        for comparator in node.comparators:
            sources.extend(self._expr(comparator))
        fact = self.result.facts.get(id(node))
        if fact is not None and fact.get("role") == "compare":
            return [self._op_node(node, fact, sources)]
        return sources

    def _expr_BoolOp(self, node: ast.BoolOp) -> List[str]:
        sources: List[str] = []
        for value in node.values:
            sources.extend(self._expr(value))
        return sources

    def _expr_IfExp(self, node: ast.IfExp) -> List[str]:
        test_sources = self._expr(node.test)
        self._sink("control", node.test, test_sources)
        body = self._expr(node.body)
        orelse = self._expr(node.orelse)
        # The selected value is control-dependent on the test.
        return body + orelse + test_sources

    def _alloc_node(self, node: ast.expr, fact: dict, sources: Sequence[str]) -> str:
        ident = f"alloc:{self._site(node)}"
        self.graph.add_node(
            ident,
            "alloc",
            self._module,
            node.lineno,
            node.col_offset,
            _fact_qual(fact.get("approx")),
            "dram",
            f"alloc {fact.get('kind', '?')}[]",
        )
        for src in sorted(set(sources)):
            self.graph.add_edge(src, ident)
        return ident

    def _expr_List(self, node: ast.List) -> List[str]:
        sources: List[str] = []
        for element in node.elts:
            sources.extend(self._expr(element))
        fact = self.result.facts.get(id(node))
        if fact is not None and fact.get("role") == "alloc":
            return [self._alloc_node(node, fact, sources)]
        return sources

    def _expr_Tuple(self, node: ast.Tuple) -> List[str]:
        sources: List[str] = []
        for element in node.elts:
            sources.extend(self._expr(element))
        return sources

    def _expr_Subscript(self, node: ast.Subscript) -> List[str]:
        container = self._expr(node.value)
        index_sources = self._expr(node.slice)
        self._sink("index", node.slice, index_sources)
        # The loaded element's value lives in (and flows from) the
        # array-holding node(s).
        return container

    def _expr_Attribute(self, node: ast.Attribute) -> List[str]:
        receiver_sources = self._expr(node.value)
        receiver_type = self._type_of(node.value)
        if receiver_type is None:
            return receiver_sources
        if receiver_type.is_array and node.attr == "length":
            return []
        if receiver_type.is_reference and receiver_type.name not in (
            "dynamic",
            "str",
            "null",
            "__math__",
        ):
            field = self._field_node(receiver_type.name, node.attr, node)
            if field is not None:
                return [field]
        return receiver_sources

    # -- calls ----------------------------------------------------------
    def _expr_Call(self, node: ast.Call) -> List[str]:
        func = node.func
        if isinstance(func, ast.Name):
            return self._call_by_name(node, func.id)
        if isinstance(func, ast.Attribute):
            return self._call_method(node, func)
        return []

    def _endorse_node(self, node: ast.Call, sources: Sequence[str]) -> str:
        ident = f"endorse:{self._site(node)}"
        self.graph.add_node(
            ident,
            "endorse",
            self._module,
            node.lineno,
            node.col_offset,
            "precise",
            "none",
            "endorse",
        )
        for src in sorted(set(sources)):
            self.graph.add_edge(src, ident)
        return ident

    def _call_by_name(self, node: ast.Call, name: str) -> List[str]:
        if name == "endorse" and len(node.args) == 1:
            sources = self._expr(node.args[0])
            return [self._endorse_node(node, sources)]
        if name in ("Approx", "Top") and len(node.args) == 1:
            sources = self._expr(node.args[0])
            ident = f"upcast:{self._site(node)}"
            self.graph.add_node(
                ident,
                "upcast",
                self._module,
                node.lineno,
                node.col_offset,
                "approx" if name == "Approx" else "top",
                "none",
                name,
            )
            for src in sorted(set(sources)):
                self.graph.add_edge(src, ident)
            return [ident]
        if name in ("int", "float", "bool", "abs"):
            sources: List[str] = []
            for arg in node.args:
                sources.extend(self._expr(arg))
            fact = self.result.facts.get(id(node))
            if fact is not None and fact.get("role") in ("convert", "unop-call"):
                return [self._op_node(node, fact, sources)]
            return sources
        if name in ("min", "max"):
            sources = []
            for arg in node.args:
                sources.extend(self._expr(arg))
            return sources
        if name == "len":
            for arg in node.args:
                self._expr(arg)
            return []
        if name == "range":
            for arg in node.args:
                bound_sources = self._expr(arg)
                self._sink("control", arg, bound_sources)
            return []
        if name == "print":
            for arg in node.args:
                arg_sources = self._expr(arg)
                self._sink("unchecked", arg, arg_sources)
            return []

        sig = self.decls.lookup_function(name)
        if sig is not None:
            return self._apply_call(node, [sig])

        info = self.decls.lookup_class(name)
        if info is not None:
            return self._apply_constructor(node, info)

        # Unknown callee: arguments escape to unchecked code.
        for arg in node.args:
            arg_sources = self._expr(arg)
            self._sink("unchecked", arg, arg_sources)
        return []

    def _call_method(self, node: ast.Call, func: ast.Attribute) -> List[str]:
        receiver_node = func.value
        if isinstance(receiver_node, ast.Name) and receiver_node.id in self._math_names:
            sources: List[str] = []
            for arg in node.args:
                sources.extend(self._expr(arg))
            fact = self.result.facts.get(id(node))
            if fact is not None and fact.get("role") == "math":
                return [self._op_node(node, fact, sources)]
            return sources

        receiver_sources = self._expr(receiver_node)
        receiver_type = self._type_of(receiver_node)
        if receiver_type is None or not receiver_type.is_reference or receiver_type.name in (
            "dynamic",
            "str",
            "null",
        ):
            for arg in node.args:
                arg_sources = self._expr(arg)
                self._sink("unchecked", arg, arg_sources)
            return []

        base_sig = self.decls.method_sig(receiver_type.name, func.attr)
        if base_sig is None:
            return []
        targets = [base_sig]
        fact = self.result.facts.get(id(node))
        if fact is not None and fact.get("role") == "invoke":
            variant = self.decls.method_sig(receiver_type.name, func.attr + APPROX_SUFFIX)
            if fact.get("dispatch") == "approx" and variant is not None:
                targets = [variant]
            elif fact.get("dispatch") == "context" and variant is not None:
                targets = [base_sig, variant]
        return self._apply_call(node, targets, receiver_sources=receiver_sources)

    def _apply_call(
        self,
        node: ast.Call,
        targets: List[FunctionSig],
        receiver_sources: Optional[List[str]] = None,
    ) -> List[str]:
        results: List[str] = []
        arg_sources = [self._expr(arg) for arg in node.args]
        for sig in targets:
            qualname = self._qualname(sig)
            params, ret = self._function_nodes(sig, qualname)
            for (pname, ptype), sources, param_ident in zip(
                sig.params, arg_sources, params
            ):
                for src in sorted(set(sources)):
                    self.graph.add_edge(src, param_ident)
                # Array arguments alias: element writes in the callee are
                # visible through the caller's holder node and vice versa.
                if ptype.is_array:
                    for src in sorted(set(sources)):
                        self.graph.add_edge(param_ident, src)
            if receiver_sources:
                # The receiver's own state reaches the callee via `self`
                # field nodes (class-global), so no extra edge is needed;
                # but an approximate receiver's method *result* depends
                # on the receiver reference itself for arrays held in
                # locals.
                pass
            if ret is not None:
                results.append(ret)
        return results

    def _apply_constructor(self, node: ast.Call, info: ClassInfo) -> List[str]:
        init = self.decls.method_sig(info.name, "__init__")
        arg_sources = [self._expr(arg) for arg in node.args]
        if init is not None:
            qualname = self._qualname(init)
            params, _ = self._function_nodes(init, qualname)
            for (pname, ptype), sources, param_ident in zip(
                init.params, arg_sources, params
            ):
                for src in sorted(set(sources)):
                    self.graph.add_edge(src, param_ident)
                if ptype.is_array:
                    for src in sorted(set(sources)):
                        self.graph.add_edge(param_ident, src)
        fact = self.result.facts.get(id(node))
        qualifier = _fact_qual(fact.get("approx")) if fact else "precise"
        ident = f"new:{self._site(node)}"
        self.graph.add_node(
            ident,
            "new",
            self._module,
            node.lineno,
            node.col_offset,
            qualifier,
            "none",
            f"new {info.name}",
        )
        # The instance's observable state includes everything written to
        # its fields; connect field nodes to the instance node so the
        # cone of a returned object includes its contents.
        for attr in sorted(info.fields):
            field = self._field_node(info.name, attr, node)
            if field is not None:
                self.graph.add_edge(field, ident)
        return [ident]


def build_flow_graph(result: CheckResult) -> FlowGraph:
    """Build the whole-program approximation-flow graph.

    ``result`` must come from :func:`repro.core.checker.check_modules`
    over the *same* AST objects (facts are keyed by node identity).
    """
    return _GraphBuilder(result).build()
