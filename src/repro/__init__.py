"""EnerPy: a Python reproduction of EnerJ (Sampson et al., PLDI 2011).

Approximate data types for safe and general low-power computation,
re-hosted on Python:

* Annotate a program with :data:`Approx`, :data:`Precise`, :data:`Top`,
  :data:`Context`, :func:`approximable`, and :func:`endorse` — it still
  runs precisely as plain Python.
* :func:`check` enforces EnerJ's isolation rules statically.
* ``repro.core.pipeline.compile_program`` / :class:`~repro.runtime
  .Simulator` run the same program on a simulated approximation-aware
  architecture and measure energy-relevant statistics.

Quickstart::

    from repro import Approx, endorse, check

    SOURCE = '''
    from repro import Approx, endorse

    def mean(nums: list[Approx[float]]) -> float:
        total: Approx[float] = 0.0
        for i in range(len(nums)):
            total = total + nums[i]
        return endorse(total / len(nums))
    '''
    result = check({"demo": SOURCE})
    assert result.ok
"""

from repro.core.annotations import (
    APPROX_SUFFIX,
    Approx,
    Context,
    Precise,
    Top,
    approximable,
    endorse,
)
from repro.core.checker import check_modules as check
from repro.core.qualifiers import Qualifier
from repro.runtime.context import Simulator

__version__ = "1.0.0"

__all__ = [
    "Approx",
    "Precise",
    "Top",
    "Context",
    "approximable",
    "endorse",
    "APPROX_SUFFIX",
    "Qualifier",
    "check",
    "Simulator",
    "__version__",
]
