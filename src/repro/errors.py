"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class QualifierError(ReproError):
    """An illegal operation on precision qualifiers (e.g. bad adaptation)."""


class TypeCheckError(ReproError):
    """A static qualifier-checking failure in an EnerPy program.

    Carries the list of diagnostics produced by the checker so tooling can
    report all failures, not just the first one.
    """

    def __init__(self, message: str, diagnostics: list | None = None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class InstrumentationError(ReproError):
    """The instrumenting compiler met a construct it cannot translate."""


class SimulationError(ReproError):
    """A failure inside the approximate-hardware simulator."""


class NoActiveSimulationError(SimulationError):
    """A runtime hook was invoked with no Simulator context active."""


class FEnerJError(ReproError):
    """Base class for errors in the FEnerJ formal-core implementation."""


class FEnerJSyntaxError(FEnerJError):
    """A lexing or parsing failure in an FEnerJ program."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class FEnerJTypeError(FEnerJError):
    """A static type error in an FEnerJ program."""


class FEnerJRuntimeError(FEnerJError):
    """A dynamic failure while evaluating an FEnerJ program."""


class IsolationViolation(FEnerJError):
    """The checked semantics observed approximate data reaching precise state.

    This should be impossible for well-typed, endorsement-free programs;
    the non-interference test-suite asserts it never fires for them.
    """


class EnergyModelError(ReproError):
    """Invalid inputs to the energy model (e.g. negative op counts)."""
