"""Application-specific quality-of-service metrics (paper Section 6).

Output error ranges from 0 (identical to the precise output) to 1
(meaningless output).  The paper's metrics, per Table 3:

* **mean entry difference** — for numeric sequences/matrices; each
  entry-wise absolute difference is clamped to 1, and a NaN entry
  contributes 1.
* **normalized difference** — for scalar outputs (MonteCarlo).
* **mean normalized difference** — entry-wise differences normalised by
  the precise entry's magnitude (SparseMatMult).
* **binary correctness** — 0 if the (non-numeric) output is exactly
  correct, 1 otherwise (ZXing).
* **fraction of correct decisions normalized to 0.5** — for boolean
  decision workloads (jMonkeyEngine): random guessing (50% correct)
  maps to error 1, all-correct to error 0.
* **mean pixel difference** — image outputs, pixels normalised to [0,1]
  (ImageJ, Raytracer).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "mean_entry_difference",
    "normalized_difference",
    "mean_normalized_difference",
    "binary_correctness",
    "decision_fraction_error",
    "mean_pixel_difference",
    "clamp01",
]


def clamp01(value: float) -> float:
    """Clamp to [0, 1]; NaN clamps to 1 (meaningless output)."""
    if math.isnan(value):
        return 1.0
    return min(1.0, max(0.0, value))


def _flatten(values) -> Iterable[float]:
    for value in values:
        if isinstance(value, (list, tuple)):
            yield from _flatten(value)
        else:
            yield value


def _entry_error(precise: float, approx: float) -> float:
    if math.isnan(approx) or math.isinf(approx):
        return 1.0
    return clamp01(abs(float(precise) - float(approx)))


def mean_entry_difference(precise, approx) -> float:
    """Mean entry-wise |difference|, each entry's contribution <= 1.

    Accepts nested lists (matrices are flattened); the structures must
    have the same number of entries.
    """
    precise_flat = list(_flatten(precise))
    approx_flat = list(_flatten(approx))
    if len(precise_flat) != len(approx_flat):
        return 1.0
    if not precise_flat:
        return 0.0
    total = sum(_entry_error(p, a) for p, a in zip(precise_flat, approx_flat))
    return total / len(precise_flat)


def normalized_difference(precise: float, approx: float) -> float:
    """|precise - approx| / |precise|, clamped to [0, 1]."""
    if math.isnan(approx) or math.isinf(approx):
        return 1.0
    if precise == 0.0:
        return clamp01(abs(approx))
    return clamp01(abs(precise - approx) / abs(precise))


def mean_normalized_difference(precise: Sequence[float], approx: Sequence[float]) -> float:
    """Mean of per-entry normalised differences."""
    precise_flat = list(_flatten(precise))
    approx_flat = list(_flatten(approx))
    if len(precise_flat) != len(approx_flat):
        return 1.0
    if not precise_flat:
        return 0.0
    total = sum(normalized_difference(p, a) for p, a in zip(precise_flat, approx_flat))
    return total / len(precise_flat)


def binary_correctness(precise, approx) -> float:
    """0 if outputs are equal, 1 otherwise (ZXing's string output)."""
    return 0.0 if precise == approx else 1.0


def decision_fraction_error(precise: Sequence[bool], approx: Sequence[bool]) -> float:
    """Error for boolean decision workloads, normalised to 0.5.

    A decider that matches the precise decisions always has error 0; one
    that is right only half the time (coin flipping) has error 1.
    Fractions below 0.5 also clamp to 1 — worse than chance is still
    meaningless output.
    """
    if len(precise) != len(approx):
        return 1.0
    if not precise:
        return 0.0
    correct = sum(1 for p, a in zip(precise, approx) if bool(p) == bool(a))
    fraction = correct / len(precise)
    return clamp01((1.0 - fraction) / 0.5)


def mean_pixel_difference(precise, approx, max_value: float = 255.0) -> float:
    """Mean per-pixel difference, pixels normalised by ``max_value``."""
    precise_flat = list(_flatten(precise))
    approx_flat = list(_flatten(approx))
    if len(precise_flat) != len(approx_flat):
        return 1.0
    if not precise_flat:
        return 0.0
    scale = float(max_value) if max_value else 1.0
    total = 0.0
    for p, a in zip(precise_flat, approx_flat):
        if isinstance(a, float) and (math.isnan(a) or math.isinf(a)):
            total += 1.0
            continue
        total += clamp01(abs(float(p) - float(a)) / scale)
    return total / len(precise_flat)
