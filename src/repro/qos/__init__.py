"""Quality-of-service metrics (paper Section 6, Table 3)."""

from repro.qos.metrics import (
    binary_correctness,
    clamp01,
    decision_fraction_error,
    mean_entry_difference,
    mean_normalized_difference,
    mean_pixel_difference,
    normalized_difference,
)

__all__ = [
    "mean_entry_difference",
    "normalized_difference",
    "mean_normalized_difference",
    "binary_correctness",
    "decision_fraction_error",
    "mean_pixel_difference",
    "clamp01",
]
