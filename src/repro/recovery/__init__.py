"""Quality-recovery runtime: acceptability checks with selective
precise re-execution (guaranteed-quality mode).

The EnerJ type system guarantees *where* errors may land, never *how
bad* the output gets — a bad fault draw simply ships a degraded
result.  This package closes that gap with a detect -> endorse-check ->
re-execute loop:

* :mod:`repro.recovery.checks` — per-app acceptability predicates that
  run **without** the precise output (unlike every metric in
  :mod:`repro.qos.metrics`): finiteness/range guards, the FFT
  energy-conservation residual, the SOR maximum-principle interval,
  structural validity for the decision/image workloads.
* :mod:`repro.recovery.slicing` — on violation, the failed output is
  mapped back through the approximation-flow graph
  (:func:`repro.analysis.flowgraph.FlowGraph.backward`, the same cone
  the reliability bound uses) to the minimal *sound* approximate
  slice: the mechanisms that may have produced the violation.
* :mod:`repro.recovery.reexec` — re-execute with exactly those
  mechanisms disabled (falling back to a whole-program precise re-run
  when the slice covers everything), account the retry's energy
  honestly through :mod:`repro.energy.model`, and re-check.

A precise re-execution always satisfies the acceptability predicates
(pinned by ``tests/test_recovery.py``), so one retry is final.

See RECOVERY.md for the check semantics and the re-execution contract.
"""

from repro.recovery.catalog import RECOVERY_METRIC_NAMES
from repro.recovery.checks import CheckVerdict, check_output, has_check
from repro.recovery.frontier import (
    RecoveryPoint,
    app_recovery_frontier,
    format_recovery_frontier,
    suite_recovery_frontier,
)
from repro.recovery.reexec import (
    RecoveredRun,
    RecoveryOutcome,
    RecoveryPolicy,
    recover_attempt,
    restrict_config,
    run_recovered,
    run_recovered_batch,
)
from repro.recovery.slicing import RecoverySlice, approximate_slice, clear_slice_cache

__all__ = [
    "CheckVerdict",
    "check_output",
    "has_check",
    "RecoverySlice",
    "approximate_slice",
    "clear_slice_cache",
    "RecoveryPolicy",
    "RecoveryOutcome",
    "RecoveredRun",
    "restrict_config",
    "run_recovered",
    "recover_attempt",
    "run_recovered_batch",
    "RecoveryPoint",
    "app_recovery_frontier",
    "suite_recovery_frontier",
    "format_recovery_frontier",
    "RECOVERY_METRIC_NAMES",
]
