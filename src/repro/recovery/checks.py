"""Per-app acceptability predicates that run without the precise output.

Everything in :mod:`repro.qos.metrics` scores an approximate output
*against the precise answer*; these checks instead test invariants the
precise semantics always satisfies, so they can gate an output at the
point of endorsement with no reference run:

* structural validity — expected length and element type;
* finiteness — no NaN/inf smuggled through an endorsement;
* conservation laws — Parseval's identity for the FFT, exact count
  conservation for the calibration histogram;
* range invariants — the SOR relaxation interval, the sparse mat-vec
  row bound, pixel palettes and clamp ranges, decision-vector domains.

Tolerance constants were derived from verification runs over the
bundled workload seeds (the "derive tolerance constraints from
observed runs" recipe in PAPERS.md) and carry generous slack; a precise
execution satisfies every predicate (pinned by
``tests/test_recovery.py``), which is what makes one precise retry
final.  False *positives* on approximate outputs are harmless — they
only trigger a retry — so the checks err on the strict side.

Each verdict is deterministic and carries the violating output region
(up to :data:`REGION_LIMIT` flat indices) for the slicer.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.apps import AppSpec
from repro.qos.metrics import _flatten

__all__ = ["CheckVerdict", "PlainRand", "check_output", "has_check", "REGION_LIMIT"]

#: Most flat output indices reported in a verdict's ``region``.
REGION_LIMIT = 8


@dataclasses.dataclass(frozen=True)
class CheckVerdict:
    """Deterministic outcome of one acceptability check."""

    ok: bool
    check: str  #: which predicate decided (e.g. ``"fft.parseval"``)
    app: str
    detail: str = ""
    #: Flat output indices implicated in the violation (empty when the
    #: predicate is global, e.g. an energy residual).
    region: Tuple[int, ...] = ()


class PlainRand:
    """Plain-Python port of the apps' shared LCG (``common/rand.py``).

    The checks recompute workload *inputs* (never outputs) outside the
    simulated machine, so the generator must be replicated exactly.
    """

    def __init__(self, seed: int) -> None:
        state = (seed * 2654435761) % 2147483648
        self.state = state if state != 0 else 12345

    def next_int(self) -> int:
        self.state = (self.state * 1103515245 + 12345) % 2147483648
        return self.state

    def next_float(self) -> float:
        return self.next_int() / 2147483648.0

    def next_in(self, low: int, high: int) -> int:
        return low + (self.next_int() // 65536) % (high - low)


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _region(indices: Sequence[int]) -> Tuple[int, ...]:
    return tuple(sorted(indices)[:REGION_LIMIT])


def _ok(check: str) -> CheckVerdict:
    return CheckVerdict(ok=True, check=check, app="")


def _fail(check: str, detail: str, region: Sequence[int] = ()) -> CheckVerdict:
    return CheckVerdict(
        ok=False, check=check, app="", detail=detail, region=_region(region)
    )


def _structure(output: object, length: int, check: str) -> Optional[CheckVerdict]:
    """Shared length + finiteness guard; None when it passes."""
    if not isinstance(output, (list, tuple)):
        return _fail(check, f"expected a sequence, got {type(output).__name__}")
    if len(output) != length:
        return _fail(check, f"expected {length} entries, got {len(output)}")
    bad = [
        i
        for i, v in enumerate(output)
        if not _is_number(v) or not math.isfinite(v)
    ]
    if bad:
        return _fail(check, f"{len(bad)} non-finite entries", bad)
    return None


# ---------------------------------------------------------------------------
# Per-app predicates.  Each takes (output, workload_args) and returns a
# verdict with the ``app`` field left blank (filled in by check_output).
# ---------------------------------------------------------------------------


def _check_fft(output, args) -> CheckVerdict:
    n, seed = args
    bad = _structure(output, 2 * n, "fft.structure")
    if bad is not None:
        return bad
    # Parseval for the unnormalised forward DFT: sum|X|^2 == n * sum|x|^2.
    # The input signal is recomputed from the workload seed.
    rng = PlainRand(seed)
    in_energy = 0.0
    for _ in range(2 * n):
        x = rng.next_float() - 0.5
        in_energy += x * x
    out_energy = math.fsum(v * v for v in output)
    expected = n * in_energy
    residual = abs(out_energy - expected) / expected if expected else out_energy
    if residual > 0.05:
        return _fail(
            "fft.parseval",
            f"energy residual {residual:.4f} exceeds 0.05 "
            f"(spectrum {out_energy:.3f} vs {expected:.3f})",
        )
    return _ok("fft.parseval")


def _check_sor(output, args) -> CheckVerdict:
    n, iterations, seed = args
    bad = _structure(output, n * n, "sor.structure")
    if bad is not None:
        return bad
    # The omega=1.25 stencil maps values in [m, M] into
    # [1.25m - 0.25M, 1.25M - 0.25m]; iterating that interval recurrence
    # once per sweep (doubled for in-sweep Gauss-Seidel cascade) bounds
    # every reachable precise value.  The grid starts in [0, 1).
    rng = PlainRand(seed)
    grid = [rng.next_float() for _ in range(n * n)]
    lo, hi = min(grid), max(grid)
    for _ in range(2 * iterations):
        lo, hi = 1.25 * lo - 0.25 * hi, 1.25 * hi - 0.25 * lo
    slack = 0.5
    bad_idx = [i for i, v in enumerate(output) if not lo - slack <= v <= hi + slack]
    if bad_idx:
        return _fail(
            "sor.interval",
            f"{len(bad_idx)} entries outside relaxation interval "
            f"[{lo - slack:.3f}, {hi + slack:.3f}]",
            bad_idx,
        )
    return _ok("sor.interval")


def _check_montecarlo(output, args) -> CheckVerdict:
    samples, _seed = args
    if not _is_number(output) or not math.isfinite(output):
        return _fail("montecarlo.structure", f"non-finite estimate {output!r}")
    if not 0.0 <= output <= 4.0:
        return _fail("montecarlo.range", f"estimate {output!r} outside [0, 4]")
    # ~30 sigma of the hit-count binomial; derived from verification runs.
    tol = max(0.25, 12.0 / math.sqrt(max(samples, 1)))
    if abs(output - math.pi) > tol:
        return _fail(
            "montecarlo.pi",
            f"estimate {output:.4f} deviates from pi by more than {tol:.3f}",
        )
    return _ok("montecarlo.pi")


def _check_sparsematmult(output, args) -> CheckVerdict:
    n, nonzeros_per_row, _iterations, _seed = args
    bad = _structure(output, n, "sparsematmult.structure")
    if bad is not None:
        return bad
    # Each iteration recomputes y = A*x from the same x (no feedback),
    # values in [-0.5, 0.5), x in [0, 1): |y_r| < nonzeros_per_row / 2.
    bound = nonzeros_per_row * 0.5 + 1e-9
    bad_idx = [i for i, v in enumerate(output) if abs(v) > bound]
    if bad_idx:
        return _fail(
            "sparsematmult.rowbound",
            f"{len(bad_idx)} rows exceed |y| <= {bound:.3f}",
            bad_idx,
        )
    return _ok("sparsematmult.rowbound")


def _check_lu(output, args) -> CheckVerdict:
    n, _seed = args
    bad = _structure(output, n * n, "lu.structure")
    if bad is not None:
        return bad
    # Input entries are in [-0.5, 0.5) plus +4.0 on the diagonal; partial
    # pivoting on that diagonally dominant matrix shows growth < 2 over
    # the bundled seeds.  Bound derived from verification runs, 4x slack.
    bound = 40.0
    bad_idx = [i for i, v in enumerate(output) if abs(v) > bound]
    if bad_idx:
        return _fail(
            "lu.growth",
            f"{len(bad_idx)} factor entries exceed |v| <= {bound:.1f}",
            bad_idx,
        )
    return _ok("lu.growth")


def _check_zxing(output, args) -> CheckVerdict:
    if output != 1:
        return _fail("zxing.decode", f"barcode failed to decode (got {output!r})")
    return _ok("zxing.decode")


def _check_jmonkey(output, args) -> CheckVerdict:
    queries, _seed = args
    bad = _structure(output, queries, "jmonkey.structure")
    if bad is not None:
        return bad
    bad_idx = [i for i, v in enumerate(output) if v not in (0, 1)]
    if bad_idx:
        return _fail(
            "jmonkey.domain", f"{len(bad_idx)} verdicts outside {{0, 1}}", bad_idx
        )
    return _ok("jmonkey.domain")


_IMAGEJ_PALETTE = (40, 200, 255)  # BACKGROUND, FILL, WALL


def _check_imagej(output, args) -> CheckVerdict:
    width, height, _seed = args
    bad = _structure(output, width * height, "imagej.structure")
    if bad is not None:
        return bad
    bad_idx = [i for i, v in enumerate(output) if v not in _IMAGEJ_PALETTE]
    if bad_idx:
        return _fail(
            "imagej.palette",
            f"{len(bad_idx)} pixels outside palette {_IMAGEJ_PALETTE}",
            bad_idx,
        )
    return _ok("imagej.palette")


def _check_raytracer(output, args) -> CheckVerdict:
    width, height, _seed = args
    bad = _structure(output, width * height, "raytracer.structure")
    if bad is not None:
        return bad
    bad_idx = [
        i
        for i, v in enumerate(output)
        if not isinstance(v, int) or not 0 <= v <= 255
    ]
    if bad_idx:
        return _fail(
            "raytracer.clamp",
            f"{len(bad_idx)} pixels outside integer [0, 255]",
            bad_idx,
        )
    return _ok("raytracer.clamp")


def _check_calibration(output, args) -> CheckVerdict:
    samples, bins, _seed = args
    bad = _structure(output, bins, "calibration.structure")
    if bad is not None:
        return bad
    bad_idx = [
        i
        for i, v in enumerate(output)
        if not isinstance(v, int) or not 0 <= v <= samples
    ]
    if bad_idx:
        return _fail(
            "calibration.range",
            f"{len(bad_idx)} counts outside [0, {samples}]",
            bad_idx,
        )
    total = sum(output)
    if total != samples:
        return _fail(
            "calibration.conservation",
            f"counts sum to {total}, expected exactly {samples}",
        )
    return _ok("calibration.conservation")


def _check_generic(output, args) -> CheckVerdict:
    """Finiteness fallback for apps without a bespoke predicate."""
    flat = _flatten(output) if isinstance(output, (list, tuple)) else [output]
    bad_idx = [
        i
        for i, v in enumerate(flat)
        if not _is_number(v) or not math.isfinite(v)
    ]
    if bad_idx:
        return _fail("generic.finite", f"{len(bad_idx)} non-finite values", bad_idx)
    return _ok("generic.finite")


_CHECKS: Dict[str, Callable] = {
    "fft": _check_fft,
    "sor": _check_sor,
    "montecarlo": _check_montecarlo,
    "sparsematmult": _check_sparsematmult,
    "lu": _check_lu,
    "zxing": _check_zxing,
    "jmonkeyengine": _check_jmonkey,
    "imagej": _check_imagej,
    "raytracer": _check_raytracer,
    "recoverycalib": _check_calibration,
}


def has_check(app_name: str) -> bool:
    """Whether ``app_name`` has a bespoke predicate (vs the fallback)."""
    return app_name.lower() in _CHECKS


def check_output(spec: AppSpec, workload_seed: int, output) -> CheckVerdict:
    """Run ``spec``'s acceptability predicate over ``output``.

    ``workload_seed`` identifies the workload so input-derived invariants
    (signal energy, grid extrema) can be recomputed; the precise output
    is never consulted.
    """
    checker = _CHECKS.get(spec.name.lower(), _check_generic)
    verdict = checker(output, spec.workload_args(workload_seed))
    return dataclasses.replace(verdict, app=spec.name)
