"""The recovery-calibration app: a workload with a dead approximate stage.

All nine paper applications funnel every approximate mechanism into
their output (or into control/index decisions that may steer it), so
their sound recovery slice is the whole program and a selective retry
degenerates to the precise fallback.  ``RecoveryCalib``
(``apps/calib/partial.py``) is the complementary shape — its shadow
smoothing pass is approximate FPU/SRAM work that provably never reaches
the output — giving the slicer a proper subset to prove and the energy
pin in ``benchmarks/bench_recovery.py`` a strict inequality to hold.

Deliberately *not* part of :data:`repro.apps.ALL_APPS`: it is a test
fixture for the recovery runtime, not a paper workload.
"""

from repro.apps import AppSpec
from repro.qos.metrics import mean_normalized_difference

__all__ = ["CALIBRATION_APP", "calibration_spec"]

CALIBRATION_APP = AppSpec(
    name="RecoveryCalib",
    description=(
        "Histogram with a dead approximate shadow pass "
        "(selective re-execution calibration fixture)"
    ),
    module_files={
        "rand": "common/rand.py",
        "partial": "calib/partial.py",
    },
    entry_module="partial",
    entry_function="run_calibration",
    default_args=(2000, 16, 0),
    qos=mean_normalized_difference,
    qos_name="mean_normalized_difference",
    workload_seed_index=2,
)


def calibration_spec() -> AppSpec:
    """The calibration app spec (function form for symmetry with tests)."""
    return CALIBRATION_APP
