"""The minimal sound approximate slice behind a failed output.

Maps an app's output back through the PR-5 approximation-flow graph to
the set of hardware mechanisms that could have produced an
acceptability violation.  Re-executing with exactly those mechanisms
disabled is bit-identical to a whole-program precise re-run (pinned by
``tests/test_recovery.py``); mechanisms outside the slice may keep
approximating — and keep their energy savings — during the retry.

Soundness demands more than the reliability bound's plain backward
cone (:func:`repro.analysis.reliability.reliability_bound` only *under*
states error rates when flow escapes the graph; a recovery retry would
ship a still-corrupt output).  Two closure steps recover it:

1. **Address-mediated flows.**  ``a[i] = v`` routes the index sources
   to an ``index`` sink with no edge onward to the container, so an
   endorsed approximate index (the ZXing/ImageJ idiom) escapes
   ``backward([output])``.  Every index sink fed by approximate data
   joins the backward roots, pulling the coordinate producers into the
   cone.
2. **Escaped flows.**  A may-approximate node *outside* that cone
   either dead-ends (its forward reach hits no sink — provably
   output-irrelevant, e.g. the calibration app's shadow pass) or
   reaches a ``control``/``index``/``unchecked`` sink, beyond which
   the graph does not track influence (e.g. a condition guarding
   ``continue``: the stores it gates carry no implicit-flow edge).
   The latter widen the slice by their mechanism.

The flow graph itself is left untouched: the analysis baselines pin
its exact shape, and the closure here is a *query* over it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Tuple

from repro.analysis.reliability import app_flow_graph, app_output_id
from repro.apps import AppSpec

__all__ = ["RecoverySlice", "approximate_slice", "clear_slice_cache"]


@dataclasses.dataclass(frozen=True)
class RecoverySlice:
    """The mechanisms that must run precisely to repair an output."""

    app: str
    #: Mechanisms the retry must disable (cone + escape widening).
    mechanisms: FrozenSet[str]
    #: Mechanisms of may-approximate nodes in the augmented output cone.
    cone_mechanisms: FrozenSet[str]
    #: Every mechanism carrying approximation anywhere in the program.
    all_mechanisms: FrozenSet[str]
    #: Approximate index sinks that joined the backward roots.
    index_sinks: Tuple[str, ...]
    #: Non-cone approximate nodes that forced widening (reach a sink).
    escaped: Tuple[str, ...]
    #: Non-cone approximate nodes proven output-irrelevant (dead ends).
    dead: Tuple[str, ...]

    @property
    def proper_subset(self) -> bool:
        """True when some approximate mechanism may stay on during the
        retry — the case where selective re-execution saves energy."""
        return self.mechanisms < self.all_mechanisms


_SLICE_CACHE: Dict[str, RecoverySlice] = {}


def clear_slice_cache() -> None:
    """Drop memoized slices (tests that mutate specs use this)."""
    _SLICE_CACHE.clear()


def _forward_reach(graph, root: str) -> List[str]:
    """All nodes reachable from ``root`` along value/control edges."""
    seen = {root}
    frontier = [root]
    while frontier:
        ident = frontier.pop()
        for succ in graph.successors(ident):
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return sorted(seen)


def approximate_slice(spec: AppSpec) -> RecoverySlice:
    """The sound approximate slice behind ``spec``'s output (memoized).

    Deterministic: a pure function of the app's checked sources, so the
    slice — and therefore every recovery decision — is stable across
    runs, processes and hosts.
    """
    cached = _SLICE_CACHE.get(spec.name)
    if cached is not None:
        return cached

    graph = app_flow_graph(spec)
    output_id = app_output_id(spec)
    roots = [output_id] if output_id in graph.nodes else []

    # Step 1: approximate-fed index sinks join the roots.
    index_sinks = []
    for ident in graph.node_ids():
        node = graph.nodes[ident]
        if node.kind == "sink" and node.label == "index":
            back = graph.backward([ident])
            if any(graph.nodes[i].may_approx for i in back if i != ident):
                index_sinks.append(ident)
    cone = set(graph.backward(roots + index_sinks))

    def _mech(ident: str) -> str:
        return graph.nodes[ident].mechanism

    cone_mechanisms = frozenset(
        _mech(i) for i in cone if graph.nodes[i].may_approx and _mech(i) != "none"
    )
    all_mechanisms = frozenset(
        _mech(i)
        for i in graph.node_ids()
        if graph.nodes[i].may_approx and _mech(i) != "none"
    )

    # Step 2: classify non-cone approximate nodes.
    escaped: List[str] = []
    dead: List[str] = []
    widened = set(cone_mechanisms)
    for ident in graph.node_ids():
        node = graph.nodes[ident]
        if ident in cone or not node.may_approx or node.mechanism == "none":
            continue
        reach = _forward_reach(graph, ident)
        if any(graph.nodes[r].is_sink or r == output_id for r in reach):
            escaped.append(ident)
            widened.add(node.mechanism)
        else:
            dead.append(ident)

    result = RecoverySlice(
        app=spec.name,
        mechanisms=frozenset(widened),
        cone_mechanisms=cone_mechanisms,
        all_mechanisms=all_mechanisms,
        index_sinks=tuple(index_sinks),
        escaped=tuple(escaped),
        dead=tuple(dead),
    )
    _SLICE_CACHE[spec.name] = result
    return result
