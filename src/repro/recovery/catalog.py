"""Catalog of recovery metric names exported by the service registry.

Import-free on purpose (mirroring ``repro/tuner/catalog.py``): the
protocol module merges these into its ``METRIC_NAMES`` catalog and the
docs drift-pin them, so this must be loadable without dragging in the
recovery runtime.
"""

__all__ = ["RECOVERY_METRIC_NAMES", "RECOVERY_MODES"]

#: Valid recovery modes, shared by the wire protocol, the CLI and
#: :class:`repro.recovery.reexec.RecoveryPolicy`.  ``selective`` retries
#: with only the violating slice forced precise; ``precise`` always
#: retries whole-program precise.
RECOVERY_MODES = ("selective", "precise")

#: name -> description, as surfaced by the ``metrics`` endpoint and
#: documented in RECOVERY.md / SERVICE.md.
RECOVERY_METRIC_NAMES = {
    "recovery.requests_total": "submit requests carrying a recover field",
    "recovery.checked": "outputs gated through an acceptability check",
    "recovery.clean": "first attempts that passed their check",
    "recovery.violations": "first attempts that failed their check",
    "recovery.retries_selective": "retries with only the slice forced precise",
    "recovery.retries_full": "retries collapsed to a whole-program precise run",
    "recovery.unrecovered": "final outputs still failing their check",
}
