"""Selective precise re-execution of a violating run.

When an acceptability check fails, the retry does not have to abandon
approximation wholesale: only the mechanisms in the output's sound
approximate slice (:mod:`repro.recovery.slicing`) can have produced the
violation, so only those are forced precise.  Mechanisms carrying
provably output-irrelevant flow stay approximate — and keep their
power-saving knobs — which is where guaranteed quality gets cheaper
than a whole-program precise re-run.

Contract (pinned by ``tests/test_recovery.py`` and
``benchmarks/bench_recovery.py``):

* a selectively-precise retry's output is **bit-identical** to the
  whole-program precise output for the same workload seed — remaining
  faults can only land on dead values — so one retry is final;
* when the restricted configuration no longer perturbs any output
  (the slice covered every fault mechanism), the retry collapses onto
  ``key.precise_reference()`` — the exact baseline run the QoS
  reference uses, sharing its run-store entry;
* the retry's energy is accounted honestly through
  :func:`repro.energy.model.estimate_energy`: the recovered cell costs
  ``attempt_energy + retry_energy`` in units of one precise execution.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, Optional, Tuple, Union

from repro.energy.model import estimate_energy
from repro.experiments.runkey import RunKey
from repro.hardware.config import HardwareConfig

from repro.recovery.catalog import RECOVERY_MODES
from repro.recovery.checks import check_output
from repro.recovery.slicing import approximate_slice

__all__ = [
    "RECOVERY_MODES",
    "RecoveryPolicy",
    "RecoveryOutcome",
    "RecoveredRun",
    "restrict_config",
    "run_recovered",
    "recover_attempt",
    "run_recovered_batch",
]


@dataclasses.dataclass(frozen=True)
class RecoveryPolicy:
    """How to re-execute when an acceptability check fails."""

    mode: str = "selective"

    def __post_init__(self) -> None:
        if self.mode not in RECOVERY_MODES:
            raise ValueError(
                f"unknown recovery mode {self.mode!r}; "
                f"expected one of {', '.join(RECOVERY_MODES)}"
            )

    @classmethod
    def coerce(
        cls, value: Union["RecoveryPolicy", str, None]
    ) -> Optional["RecoveryPolicy"]:
        """Normalise a policy, mode string, or None (no recovery)."""
        if value is None or isinstance(value, cls):
            return value
        return cls(mode=value)


@dataclasses.dataclass(frozen=True)
class RecoveryOutcome:
    """What the recovery loop did for one run."""

    mode: str
    check: str  #: predicate that judged the first attempt
    violation: bool  #: first attempt failed its acceptability check
    detail: str = ""
    region: Tuple[int, ...] = ()
    retried: bool = False
    retry_kind: Optional[str] = None  #: ``"selective"`` | ``"full"`` | None
    disabled: Tuple[str, ...] = ()  #: mechanisms forced precise in the retry
    kept: Tuple[str, ...] = ()  #: mechanisms left approximate in the retry
    attempt_energy: float = 0.0
    retry_energy: float = 0.0
    final_ok: bool = True  #: the delivered output passes its check

    @property
    def total_energy(self) -> float:
        """Cost of the recovered cell, in precise-execution units."""
        return self.attempt_energy + self.retry_energy

    def to_dict(self) -> dict:
        """JSON-safe wire form (service result ``recovery`` block)."""
        return {
            "mode": self.mode,
            "check": self.check,
            "violation": self.violation,
            "detail": self.detail,
            "region": list(self.region),
            "retried": self.retried,
            "retry_kind": self.retry_kind,
            "disabled": list(self.disabled),
            "kept": list(self.kept),
            "attempt_energy": self.attempt_energy,
            "retry_energy": self.retry_energy,
            "total_energy": self.total_energy,
            "final_ok": self.final_ok,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RecoveryOutcome":
        return cls(
            mode=payload["mode"],
            check=payload["check"],
            violation=payload["violation"],
            detail=payload.get("detail", ""),
            region=tuple(payload.get("region", ())),
            retried=payload.get("retried", False),
            retry_kind=payload.get("retry_kind"),
            disabled=tuple(payload.get("disabled", ())),
            kept=tuple(payload.get("kept", ())),
            attempt_energy=payload.get("attempt_energy", 0.0),
            retry_energy=payload.get("retry_energy", 0.0),
            final_ok=payload.get("final_ok", True),
        )


@dataclasses.dataclass(frozen=True)
class RecoveredRun:
    """The delivered run (attempt, or its retry) plus what happened."""

    result: object  #: :class:`repro.experiments.harness.RunResult`
    outcome: RecoveryOutcome

    @property
    def output(self):
        return self.result.output


def restrict_config(
    config: HardwareConfig, mechanisms: Iterable[str]
) -> HardwareConfig:
    """``config`` with the given fault mechanisms forced precise.

    The mapping surrenders savings honestly: a mechanism made reliable
    gives up its power-saving knob too.  ``timing_error_prob`` drives
    both ALU and FPU stochastic faults, so disabling either logic slice
    zeroes it (and the integer-op saving that rides on it); the FPU
    slice additionally restores full mantissas and the FP-op saving.
    """
    mechanisms = frozenset(mechanisms)
    unknown = mechanisms - {"sram", "dram", "alu", "fpu"}
    if unknown:
        raise ValueError(f"unknown mechanisms: {sorted(unknown)}")
    updates: dict = {}
    if "sram" in mechanisms:
        updates.update(
            sram_read_upset=0.0, sram_write_failure=0.0, sram_power_saving=0.0
        )
    if "dram" in mechanisms:
        updates.update(
            dram_flip_per_second=0.0, dram_power_saving=0.0, load_elision_prob=0.0
        )
    if "alu" in mechanisms or "fpu" in mechanisms:
        updates.update(timing_error_prob=0.0, int_op_saving=0.0)
    if "fpu" in mechanisms:
        updates.update(
            float_mantissa_bits=24, double_mantissa_bits=52, fp_op_saving=0.0
        )
    name = f"{config.name}+precise[{','.join(sorted(mechanisms))}]"
    return dataclasses.replace(config, name=name, **updates)


def _output_affecting(config: HardwareConfig) -> bool:
    """Whether ``config`` can perturb any value an execution computes.

    Unlike :attr:`HardwareConfig.approximates_anything` this includes
    load elision and ignores pure power-saving knobs: a config that only
    saves power still produces bit-identical outputs.
    """
    return (
        config.sram_read_upset > 0.0
        or config.sram_write_failure > 0.0
        or config.dram_flip_per_second > 0.0
        or config.timing_error_prob > 0.0
        or config.load_elision_prob > 0.0
        or config.float_mantissa_bits < 24
        or config.double_mantissa_bits < 52
    )


def run_recovered(key: RunKey, policy: RecoveryPolicy) -> RecoveredRun:
    """Execute ``key`` with acceptability checking and recovery.

    Runs the approximate attempt, checks it, and — on violation —
    re-executes per ``policy`` and re-checks.  The returned run is the
    one to deliver (the retry when one happened).
    """
    from repro.experiments import harness  # deferred: harness is heavy

    return recover_attempt(key, harness.run_key(key), policy)


def recover_attempt(key: RunKey, attempt, policy: RecoveryPolicy) -> RecoveredRun:
    """The check + retry half of :func:`run_recovered`.

    ``attempt`` is an already-executed
    :class:`~repro.experiments.harness.RunResult` for ``key`` — the
    batch path runs whole seed blocks first and recovers each lane
    through here, bit-identically to the serial loop.
    """
    from repro.experiments import harness  # deferred: harness is heavy

    attempt_energy = estimate_energy(attempt.stats, key.config).total
    first = check_output(key.spec, key.workload_seed, attempt.output)
    if first.ok:
        return RecoveredRun(
            result=attempt,
            outcome=RecoveryOutcome(
                mode=policy.mode,
                check=first.check,
                violation=False,
                attempt_energy=attempt_energy,
            ),
        )

    prog_slice = approximate_slice(key.spec)
    if policy.mode == "precise":
        disabled = prog_slice.all_mechanisms
    else:
        disabled = prog_slice.mechanisms
    kept = prog_slice.all_mechanisms - disabled
    restricted = restrict_config(key.config, disabled)
    if _output_affecting(restricted):
        retry_key = RunKey(
            spec=key.spec,
            config=restricted,
            fault_seed=key.fault_seed,
            workload_seed=key.workload_seed,
        )
        retry_kind = "selective"
    else:
        # Nothing output-affecting survives the restriction: collapse
        # onto the canonical baseline run and share its store entry.
        retry_key = key.precise_reference()
        retry_kind = "full"
    retry = harness.run_key(retry_key)
    retry_energy = estimate_energy(retry.stats, retry_key.config).total
    final = check_output(key.spec, key.workload_seed, retry.output)
    return RecoveredRun(
        result=retry,
        outcome=RecoveryOutcome(
            mode=policy.mode,
            check=first.check,
            violation=True,
            detail=first.detail,
            region=first.region,
            retried=True,
            retry_kind=retry_kind,
            disabled=tuple(sorted(disabled)),
            kept=tuple(sorted(kept)),
            attempt_energy=attempt_energy,
            retry_energy=retry_energy,
            final_ok=final.ok,
        ),
    )


def run_recovered_batch(
    keys, policy: RecoveryPolicy, engine: str = "auto"
) -> "list[RecoveredRun]":
    """Recovery over a seed block: batched attempts, per-lane recovery.

    ``keys`` follows the :func:`repro.experiments.harness.run_keys_batch`
    contract (shared app/config/workload seed).  Attempts run in one
    batched simulation; violating lanes retry serially — retries use a
    *different* hardware configuration per the slice, so they cannot
    share the block's lanes.  Per-lane results are bit-identical to
    :func:`run_recovered` per key.
    """
    from repro.experiments import harness  # deferred: harness is heavy

    keys = list(keys)
    attempts = harness.run_keys_batch(keys, engine=engine)
    return [
        recover_attempt(key, attempt, policy)
        for key, attempt in zip(keys, attempts)
    ]
