"""The energy-vs-guaranteed-quality frontier of recovery mode.

``repro recover frontier`` sweeps each app across the Table 2 hardware
levels, running every fault seed twice in effect: once raw (the
paper's best-effort QoS) and once through the recovery loop
(:func:`repro.recovery.reexec.run_recovered`).  A point reports what
the *guarantee* costs: the mean energy of recovered cells (attempt +
retry, in precise-execution units) against the recovered QoS — which
meets the acceptability predicate on every cell, by construction.

This is the checked counterpart of the PR-8 tuner frontier
(:mod:`repro.tuner.frontier`): the tuner *steers* toward a quality
budget statistically; recovery *enforces* a per-output predicate and
pays for violations with precise re-execution.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps import ALL_APPS, AppSpec
from repro.hardware.config import AGGRESSIVE, MEDIUM, MILD, HardwareConfig

from repro.recovery.reexec import RecoveryPolicy, run_recovered
from repro.recovery.slicing import approximate_slice

__all__ = [
    "DEFAULT_LEVELS",
    "DEFAULT_RUNS",
    "RecoveryPoint",
    "app_recovery_frontier",
    "suite_recovery_frontier",
    "format_recovery_frontier",
]

#: The hardware levels the frontier sweeps (paper Table 2).
DEFAULT_LEVELS: Tuple[HardwareConfig, ...] = (MILD, MEDIUM, AGGRESSIVE)

#: Fault seeds per (app, level) cell.
DEFAULT_RUNS = 10


@dataclasses.dataclass(frozen=True)
class RecoveryPoint:
    """One (app, level) cell of the recovery frontier."""

    app: str
    config: str
    runs: int
    violations: int  #: first attempts that failed their check
    retries_selective: int
    retries_full: int
    unrecovered: int  #: final outputs still failing (0 by contract)
    raw_qos: float  #: mean QoS error without recovery
    recovered_qos: float  #: mean QoS error of delivered outputs
    raw_energy: float  #: mean attempt energy (precise units)
    recovered_energy: float  #: mean attempt + retry energy
    disabled: Tuple[str, ...]  #: the app's recovery slice
    kept: Tuple[str, ...]  #: mechanisms provably output-irrelevant
    proper_subset: bool

    @property
    def energy_overhead(self) -> float:
        """Extra energy the guarantee cost, in precise units per run."""
        return self.recovered_energy - self.raw_energy

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


def app_recovery_frontier(
    spec: AppSpec,
    levels: Sequence[HardwareConfig] = DEFAULT_LEVELS,
    runs: int = DEFAULT_RUNS,
    workload_seed: int = 0,
    policy: Optional[RecoveryPolicy] = None,
) -> List[RecoveryPoint]:
    """One :class:`RecoveryPoint` per hardware level for ``spec``.

    Fault seeds follow the harness convention (``1..runs``); the raw
    attempt of each recovered cell doubles as the unrecovered sample,
    so the comparison is over identical executions.
    """
    from repro.experiments.harness import precise_output, run_key
    from repro.experiments.runkey import RunKey

    if runs <= 0:
        raise ValueError("runs must be positive")
    policy = policy or RecoveryPolicy()
    reference = precise_output(spec, workload_seed)
    prog_slice = approximate_slice(spec)
    points = []
    for config in levels:
        violations = sel = full = unrecovered = 0
        raw_qos_total = rec_qos_total = 0.0
        raw_energy_total = rec_energy_total = 0.0
        for fault_seed in range(1, runs + 1):
            key = RunKey(
                spec=spec,
                config=config,
                fault_seed=fault_seed,
                workload_seed=workload_seed,
            )
            recovered = run_recovered(key, policy)
            outcome = recovered.outcome
            raw_energy_total += outcome.attempt_energy
            rec_energy_total += outcome.total_energy
            rec_qos_total += spec.qos(reference, recovered.output)
            if outcome.violation:
                violations += 1
                # The raw (unrecovered) sample is the first attempt;
                # re-running it is deterministic (a store hit when warm).
                raw_qos_total += spec.qos(reference, run_key(key).output)
            else:
                raw_qos_total += spec.qos(reference, recovered.output)
            if outcome.retry_kind == "selective":
                sel += 1
            elif outcome.retry_kind == "full":
                full += 1
            if not outcome.final_ok:
                unrecovered += 1
        points.append(
            RecoveryPoint(
                app=spec.name,
                config=config.name,
                runs=runs,
                violations=violations,
                retries_selective=sel,
                retries_full=full,
                unrecovered=unrecovered,
                raw_qos=raw_qos_total / runs,
                recovered_qos=rec_qos_total / runs,
                raw_energy=raw_energy_total / runs,
                recovered_energy=rec_energy_total / runs,
                disabled=tuple(sorted(prog_slice.mechanisms)),
                kept=tuple(
                    sorted(prog_slice.all_mechanisms - prog_slice.mechanisms)
                ),
                proper_subset=prog_slice.proper_subset,
            )
        )
    return points


def suite_recovery_frontier(
    apps: Optional[Sequence[AppSpec]] = None,
    levels: Sequence[HardwareConfig] = DEFAULT_LEVELS,
    runs: int = DEFAULT_RUNS,
    workload_seed: int = 0,
    policy: Optional[RecoveryPolicy] = None,
) -> Dict[str, List[RecoveryPoint]]:
    return {
        spec.name: app_recovery_frontier(
            spec, levels, runs, workload_seed, policy
        )
        for spec in (apps or ALL_APPS)
    }


def format_recovery_frontier(
    frontier: Dict[str, List[RecoveryPoint]]
) -> str:
    """The ``repro recover frontier`` table: one line per (app, level)."""
    header = (
        f"{'Application':14s} {'config':>10s} {'viol':>6s} {'sel':>4s} "
        f"{'full':>4s} {'rawQoS':>8s} {'recQoS':>8s} {'rawE':>7s} "
        f"{'recE':>7s} {'kept':>10s}"
    )
    lines = [header, "-" * len(header)]
    for app in sorted(frontier):
        for point in frontier[app]:
            kept = ",".join(point.kept) if point.kept else "-"
            lines.append(
                f"{point.app:14s} {point.config:>10s} "
                f"{point.violations:>3d}/{point.runs:<2d} "
                f"{point.retries_selective:>4d} {point.retries_full:>4d} "
                f"{point.raw_qos:>8.4f} {point.recovered_qos:>8.4f} "
                f"{point.raw_energy:>7.3f} {point.recovered_energy:>7.3f} "
                f"{kept:>10s}"
            )
    return "\n".join(lines)
