"""A tour of FEnerJ, the paper's formal core language (Section 3).

Parses and typechecks FEnerJ programs, shows the context-adaptation
rules in action, evaluates under the approximating semantics, and
demonstrates the non-interference property — plus the negative control
showing why `endorse` had to be left out of the formal core.

Run with::

    python examples/fenerj_tour.py
"""

from repro.errors import FEnerJTypeError
from repro.fenerj import (
    IdentityPolicy,
    RandomPerturbPolicy,
    TypeChecker,
    check_noninterference,
    parse_program,
    random_program,
    run_program,
)

INTPAIR = """
class IntPair extends Object {
  context int x;
  context int y;
  approx int numAdditions;

  context int addToBoth(context int amount) context {
    this.x := this.x + amount ;
    this.y := this.y + amount ;
    this.numAdditions := this.numAdditions + 1 ;
    this.x
  }
}
main IntPair {
  this.addToBoth(3) ;
  this.addToBoth(4) ;
  this.x + this.y
}
"""

ILL_TYPED = """
class C extends Object {
  precise int p;
  approx int a;
}
main C { this.p := this.a ; this.p }
"""


def main() -> None:
    print("== The paper's IntPair example, in FEnerJ concrete syntax ==")
    program = parse_program(INTPAIR)
    result_type = TypeChecker(program).check_program()
    print(f"typechecks; main expression : {result_type}")

    result, _heap = run_program(program)
    print(f"evaluates to                : {result.data} (approx={result.approx})")

    print("\n== Context adaptation at work ==")
    approx_main = parse_program(INTPAIR.replace("main IntPair", "main approx IntPair"))
    result_type = TypeChecker(approx_main).check_program()
    print(f"same program, approx instance: main expression is {result_type}")
    print("(the context fields x, y adapted to the instance's precision)")

    print("\n== The checker enforces isolation ==")
    try:
        TypeChecker(parse_program(ILL_TYPED)).check_program()
    except FEnerJTypeError as error:
        print(f"rejected: {error}")

    print("\n== Non-interference (Section 3.3) ==")
    print("30 random well-typed programs, every approximate value replaced")
    print("with garbage vs. fault-free execution:")
    violations = 0
    for seed in range(30):
        generated = random_program(seed)
        TypeChecker(generated).check_program()
        ni = check_noninterference(
            generated, IdentityPolicy(), RandomPerturbPolicy(seed, rate=1.0)
        )
        violations += ni.interferes
    print(f"precise state differed in {violations}/30 programs (theorem says 0)")

    print("\n== Negative control: endorse breaks the theorem ==")
    interfered = 0
    for seed in range(40):
        generated = random_program(seed, with_endorse=True)
        TypeChecker(generated, allow_endorse=True).check_program()
        ni = check_noninterference(
            generated, IdentityPolicy(), RandomPerturbPolicy(seed, rate=1.0)
        )
        interfered += ni.interferes
    print(
        f"with endorse in the language, {interfered}/40 programs interfere — "
        "which is why FEnerJ omits it"
    )


if __name__ == "__main__":
    main()
