"""Domain example: rendering under approximation, made visible.

Renders the Raytracer app's scene at each aggressiveness level and
prints ASCII versions side by side, with the measured mean pixel error
— the qualitative claim of the paper's Section 6.2 ("Raytracer always
outputs an image resembling its precise output, but the amount of
random pixel noise increases with the aggressiveness").

Run with::

    python examples/raytracer_gallery.py
"""

from repro.apps import app_by_name, load_sources
from repro.core.pipeline import compile_program
from repro.hardware import AGGRESSIVE, BASELINE, MEDIUM, MILD
from repro.qos import mean_pixel_difference
from repro.runtime import Simulator

WIDTH = 56
HEIGHT = 28
RAMP = " .:-=+*#%@"


def ascii_render(pixels, width, height) -> str:
    lines = []
    for y in range(0, height, 2):
        row = []
        for x in range(width):
            level = max(0, min(255, pixels[y * width + x]))
            row.append(RAMP[min(len(RAMP) - 1, level * len(RAMP) // 256)])
        lines.append("".join(row))
    return "\n".join(lines)


def main() -> None:
    spec = app_by_name("raytracer")
    program = compile_program(load_sources(spec))

    with Simulator(BASELINE, seed=0):
        reference = program.call("tracer", "render", WIDTH, HEIGHT, 5)

    for config in (BASELINE, MILD, MEDIUM, AGGRESSIVE):
        with Simulator(config, seed=7):
            image = program.call("tracer", "render", WIDTH, HEIGHT, 5)
        error = mean_pixel_difference(reference, image)
        print(f"--- {config.name} (mean pixel error {error:.4f}) ---")
        print(ascii_render(image, WIDTH, HEIGHT))
        print()


if __name__ == "__main__":
    main()
