"""The approximation-aware ISA, hands on (paper Section 4.1).

Assembles a program that mixes precise control flow with approximate
data processing, shows the static validator rejecting isolation
violations at the ISA level, and runs the same binary on increasingly
aggressive hardware — the paper's point that an approximate instruction
is only a *hint*, so one binary serves every substrate.

Finishes by compiling an FEnerJ expression to assembly, demonstrating
qualifier-directed instruction selection.

Run with::

    python examples/isa_playground.py
"""

from repro.fenerj.parser import parse_expression
from repro.hardware import AGGRESSIVE, BASELINE, MEDIUM, MILD
from repro.isa import Machine, ValidationError, assemble, compile_expression, validate

PROGRAM = """
; Sum 8 approximate samples stored in an approximate DRAM region,
; then endorse the total for output.  Loop bookkeeping is precise.
.approx 100 32
.word 100 3
.word 101 1
.word 102 4
.word 103 1
.word 104 5
.word 105 9
.word 106 2
.word 107 6
    li   r1, 0          ; i
    li   r2, 8          ; n
    li   a1, 0          ; sum (approximate register)
loop:
    slt  r3, r1, r2
    beqz r3, done
    ld   a2, r1, 100    ; approximate load (address in the .approx region)
    add.a a1, a1, a2    ; approximate accumulate
    li   r4, 1
    add  r1, r1, r4
    jmp  loop
done:
    mov.e r5, a1        ; endorse the approximate total
    out  r5
    halt
"""

VIOLATIONS = {
    "approximate branch": "    li a1, 1\nx:  beqz a1, x\n",
    "approx->precise mov": "    li a1, 1\n    mov r1, a1\n",
    ".a into precise register": "    add.a r1, r2, r3\n",
    "approximate output": "    li a1, 1\n    out a1\n",
}


def main() -> None:
    program = assemble(PROGRAM)
    validate(program)
    print("== One binary, four substrates ==")
    print(f"{'config':>10s} {'sum':>12s} {'faults':>7s} {'approx int ops':>15s}")
    for config in (BASELINE, MILD, MEDIUM, AGGRESSIVE):
        machine = Machine(config, seed=2)
        result = machine.run(program)
        print(
            f"{config.name:>10s} {result.output[0]:>12} {result.faults:>7d} "
            f"{result.int_ops_approx:>15d}"
        )
    print("(the precise answer is 31; approximate substrates may wobble)\n")

    print("== The validator is the type system's ISA shadow ==")
    for label, source in VIOLATIONS.items():
        try:
            validate(assemble(source))
            print(f"  {label}: ACCEPTED (bug!)")
        except ValidationError as error:
            print(f"  {label}: rejected ({error})")

    print("\n== Qualifier-directed code generation from FEnerJ ==")
    expr = parse_expression("endorse(((approx int) 6 * 7) + (approx int) 0)")
    assembly = compile_expression(expr)
    print(assembly)
    result = Machine(BASELINE).run(assemble(assembly))
    print(f"result: {result.output[0]}")


if __name__ == "__main__":
    main()
