"""Domain example: an approximate barcode-scanning pipeline (ZXing-style).

The paper's motivating pattern: a fault-tolerant image-processing phase
(thresholding, finder location, grid sampling — all approximate) feeding
a fault-sensitive precise phase (payload extraction, checksum).  This
example encodes messages, renders them with sensor noise, and decodes
under increasingly aggressive hardware, reporting the scan success rate
and the energy the scanner would save.

Run with::

    python examples/barcode_scanner.py
"""

from repro.apps import app_by_name, load_sources
from repro.core.pipeline import compile_program
from repro.energy import MOBILE, estimate_energy
from repro.hardware import AGGRESSIVE, BASELINE, MEDIUM, MILD
from repro.runtime import Simulator

SCANS = 10


def main() -> None:
    spec = app_by_name("zxing")
    program = compile_program(load_sources(spec))

    print("== MiniCode scanner: 12-byte payloads, scale 3, noise 20 ==\n")

    # Reference statistics for the energy estimate (one precise scan).
    with Simulator(BASELINE, seed=0) as sim:
        assert program.call("decoder", "run_zxing", 12, 3, 20, 0) == 1
    stats = sim.stats()
    print(
        f"one scan: {stats.ops_total} ops "
        f"({stats.fp_proportion:.1%} FP), "
        f"{stats.endorsements} endorsements, "
        f"{stats.dram_approx_fraction:.0%} of DRAM byte-ticks approximate"
    )

    print(f"\n{'config':>10s} {'scans ok':>9s} {'energy (mobile)':>16s}")
    for config in (BASELINE, MILD, MEDIUM, AGGRESSIVE):
        successes = 0
        for scan in range(SCANS):
            with Simulator(config, seed=scan + 1):
                successes += program.call("decoder", "run_zxing", 12, 3, 20, scan)
        energy = estimate_energy(stats, config, MOBILE).total
        print(f"{config.name:>10s} {successes:>6d}/{SCANS} {energy:>16.1%}")

    print(
        "\nMild approximation scans reliably; the checksum (precise by"
        "\nconstruction — the type system forbids approximate data in it"
        "\nwithout endorsement) rejects every corrupted read rather than"
        "\nreturning garbage."
    )


if __name__ == "__main__":
    main()
