"""Quickstart: annotate, check, compile, and run an EnerPy program.

Walks the full EnerJ workflow from the paper on a tiny kernel:

1. write ordinary Python with ``Approx``/``endorse`` annotations;
2. statically check isolation of approximate and precise data;
3. compile (instrument) the program for the simulated
   approximation-aware architecture;
4. execute under the Baseline / Mild / Medium / Aggressive
   configurations, measuring output quality and estimated energy.

Run with::

    python examples/quickstart.py
"""

from repro.core.checker import check_modules
from repro.core.pipeline import compile_program
from repro.energy import estimate_energy
from repro.hardware import AGGRESSIVE, BASELINE, MEDIUM, MILD
from repro.qos import mean_entry_difference
from repro.runtime import Simulator

PROGRAM = '''
from repro import Approx, endorse

def smooth(n: int) -> list[float]:
    """A little stencil: average each cell with its neighbours."""
    data: list[Approx[float]] = [0.0] * n
    for i in range(n):
        data[i] = 1.0 * (i % 17)
    for sweep in range(8):
        for i in range(1, n - 1):
            data[i] = (data[i - 1] + data[i] + data[i + 1]) / 3.0
    out: list[float] = [0.0] * n
    for i in range(n):
        out[i] = endorse(data[i])
    return out
'''

ILL_TYPED = '''
from repro import Approx

def leak() -> float:
    a: Approx[float] = 1.0
    p: float = a          # approximate-to-precise flow: rejected
    if a > 0.5:           # approximate condition: rejected
        p = 2.0
    return p
'''


def main() -> None:
    # --- 1 & 2: the checker guarantees isolation statically ---------
    print("== Checking a well-typed program ==")
    result = check_modules({"demo": PROGRAM})
    print(f"ok: {result.ok} (0 diagnostics expected: {len(result.diagnostics)})")

    print("\n== Checking an ill-typed program ==")
    bad = check_modules({"demo": ILL_TYPED})
    for diagnostic in bad.diagnostics:
        print(f"  {diagnostic}")

    # --- 3: compile for the approximate architecture ----------------
    program = compile_program({"demo": PROGRAM})

    # --- 4: run across hardware configurations ----------------------
    print("\n== Running under four hardware configurations ==")
    with Simulator(BASELINE, seed=0) as sim:
        reference = program.call("demo", "smooth", 256)
    baseline_stats = sim.stats()

    print(f"{'config':>10s} {'QoS error':>12s} {'energy':>8s} {'faults':>7s}")
    for config in (BASELINE, MILD, MEDIUM, AGGRESSIVE):
        with Simulator(config, seed=1) as sim:
            output = program.call("demo", "smooth", 256)
        stats = sim.stats()
        # The paper's metric: mean entry-wise difference, clamped to 1.
        error = mean_entry_difference(reference, output)
        energy = estimate_energy(baseline_stats, config).total
        print(
            f"{config.name:>10s} {error:>12.6f} {energy:>8.1%} "
            f"{stats.total_faults:>7d}"
        )

    print(
        "\nThe same compiled program served every configuration — the"
        "\npaper's single approximation-aware binary.  And the same source"
        "\nruns as plain Python (annotations are runtime no-ops)."
    )


if __name__ == "__main__":
    main()
