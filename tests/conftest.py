"""Shared test configuration.

The batch fault-injection engine's numpy lanes are optional (the
``[batch]`` extra).  Tests exercising the numpy engine must *skip*, not
fail, when numpy is absent — the pure-Python fallback engine keeps the
simulator fully functional, so a numpy-less environment is a supported
configuration, and the differential suite still runs against the
``python`` engine there.
"""

import pytest

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    HAVE_NUMPY = False

requires_numpy = pytest.mark.skipif(
    not HAVE_NUMPY,
    reason="numpy not installed (the [batch] extra); "
    "the pure-Python engine tests still cover this path",
)

#: Engine parametrization for the batch differential tests: the
#: pure-Python engine always runs; the numpy engine skips when absent.
BATCH_ENGINES = [
    pytest.param("python", id="python-engine"),
    pytest.param("numpy", marks=requires_numpy, id="numpy-engine"),
]
