"""Concurrent-writer safety and handle refcounting for the run store.

The simulation daemon introduces two new store usage patterns that the
original single-process campaigns never exercised:

* several writers (worker processes, plus the daemon's own handle)
  publishing entries into the same store directory at once, and
* a long-lived handle that must survive a harness ``clear_caches()``
  reset (``RunStore.share`` / refcounted ``close``).

These tests pin both: racing same-key and distinct-key writers always
leave a clean, verifiable store, and the share/close discipline behaves
like a proper refcount (double close included).
"""

import dataclasses
import threading

import pytest

from repro import store as store_mod
from repro.apps import app_by_name
from repro.experiments import RunKey
from repro.runtime.stats import RunStats
from repro.store import RunStore, StoreError

MC = dataclasses.replace(
    app_by_name("montecarlo"), name="MC@concurrency-test", default_args=(300, 0)
)

STATS = RunStats(int_ops_approx=5, fp_ops_precise=2, ticks=99, endorsements=3)


def _key(fault_seed=1):
    from repro.hardware.config import MEDIUM

    return RunKey(spec=MC, config=MEDIUM, fault_seed=fault_seed, workload_seed=0)


def _hammer(threads):
    errors = []

    def run(fn):
        try:
            fn()
        except Exception as exc:  # noqa: BLE001 - collected for assertion
            errors.append(exc)

    workers = [threading.Thread(target=run, args=(fn,)) for fn in threads]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    return errors


class TestConcurrentWriters:
    def test_same_key_same_handle(self, tmp_path):
        with RunStore(str(tmp_path / "cache")) as store:
            key = _key()
            errors = _hammer(
                [lambda: store.put(key, [1.0, 2.0], STATS) for _ in range(8)]
            )
            assert errors == []
            entry = store.get(key)
            assert entry is not None and entry.output == [1.0, 2.0]
            assert store.verify() == []

    def test_same_key_distinct_handles(self, tmp_path):
        # Two independent handles on one directory model two processes
        # (the daemon plus a concurrently running `repro experiments`).
        root = str(tmp_path / "cache")
        with RunStore(root) as a, RunStore(root) as b:
            key = _key()
            errors = _hammer(
                [lambda: a.put(key, "payload", STATS) for _ in range(4)]
                + [lambda: b.put(key, "payload", STATS) for _ in range(4)]
            )
            assert errors == []
            assert a.get(key).output == "payload"
            assert b.get(key).output == "payload"
            assert a.verify() == []

    def test_distinct_keys_race_cleanly(self, tmp_path):
        with RunStore(str(tmp_path / "cache")) as store:
            keys = [_key(fault_seed=s) for s in range(1, 9)]
            errors = _hammer(
                [lambda k=k: store.put(k, k.fault_seed, STATS) for k in keys]
            )
            assert errors == []
            for key in keys:
                assert store.get(key).output == key.fault_seed
            assert store.stats().entries == len(keys)
            assert store.verify() == []

    def test_put_preserves_existing_trace_summary_under_lock(self, tmp_path):
        with RunStore(str(tmp_path / "cache")) as store:
            key = _key()
            summary = {"events": 7, "dropped": 0, "counters": {}}
            store.put(key, 1.5, STATS, trace_summary=summary)
            # A plain (summary-less) republish of the same run must not
            # wipe the richer entry, even when racing.
            errors = _hammer([lambda: store.put(key, 1.5, STATS) for _ in range(6)])
            assert errors == []
            assert store.get(key).trace_summary == summary


class TestHandleRefcounting:
    def test_share_keeps_handle_open_across_close(self, tmp_path):
        store = RunStore(str(tmp_path / "cache"))
        assert store.share() is store
        store.close()  # drops the shared ref; one ref remains
        store.put(_key(), 3.25, STATS)
        assert store.get(_key()).output == 3.25
        store.close()  # last ref: now actually closed
        with pytest.raises(StoreError):
            store.get(_key())

    def test_double_close_does_not_raise(self, tmp_path):
        store = RunStore(str(tmp_path / "cache"))
        store.close()
        store.close()  # idempotent, satellite requirement
        with pytest.raises(StoreError):
            store.put(_key(), 0, STATS)

    def test_share_after_close_is_an_error(self, tmp_path):
        store = RunStore(str(tmp_path / "cache"))
        store.close()
        with pytest.raises(StoreError):
            store.share()

    def test_reset_active_store_spares_shared_holder(self, tmp_path):
        store = RunStore(str(tmp_path / "cache"))
        previous = store_mod.set_active_store(store.share())
        try:
            store_mod.reset_active_store()  # closes the active reference
            assert store_mod.active_store() is None
            store.put(_key(), "survivor", STATS)  # holder's ref still live
            assert store.get(_key()).output == "survivor"
        finally:
            store_mod.set_active_store(previous)
            store.close()
