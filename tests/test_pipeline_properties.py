"""Property tests across the whole EnerPy pipeline.

Two paper-level invariants, checked on generated programs:

* **Baseline fidelity** — an instrumented program under the Baseline
  configuration computes the same result as the plain-Python execution
  of the same source, up to binary32 rounding of approximate float
  operations (the simulated register width).  For integer programs the
  match is exact.
* **Output totality** — under any configuration, well-typed programs
  produce outputs without raising (approximation may degrade, never
  crash), for programs whose approximate data is endorsed before use
  in control flow.
"""

import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import compile_program
from repro.hardware import AGGRESSIVE, BASELINE, MEDIUM
from repro.runtime import Simulator

PRELUDE = "from repro import Approx, endorse\n"

_INT_OPS = ["+", "-", "*"]


@st.composite
def int_kernel(draw):
    """A straight-line precise integer kernel returning an int."""
    lines = ["def kernel() -> int:"]
    names = []
    count = draw(st.integers(min_value=1, max_value=6))
    for index in range(count):
        name = f"v{index}"
        if names and draw(st.booleans()):
            left = draw(st.sampled_from(names))
            right = draw(st.integers(min_value=-50, max_value=50))
            op = draw(st.sampled_from(_INT_OPS))
            lines.append(f"    {name}: int = {left} {op} {right}")
        else:
            value = draw(st.integers(min_value=-100, max_value=100))
            lines.append(f"    {name}: int = {value}")
        names.append(name)
    result = draw(st.sampled_from(names))
    lines.append(f"    return {result}")
    return "\n".join(lines) + "\n"


@st.composite
def approx_kernel(draw):
    """An approximate integer kernel whose result is endorsed."""
    lines = ["def kernel() -> int:"]
    names = []
    count = draw(st.integers(min_value=1, max_value=6))
    for index in range(count):
        name = f"v{index}"
        if names and draw(st.booleans()):
            left = draw(st.sampled_from(names))
            right = draw(st.integers(min_value=-50, max_value=50))
            op = draw(st.sampled_from(_INT_OPS))
            lines.append(f"    {name}: Approx[int] = {left} {op} {right}")
        else:
            value = draw(st.integers(min_value=-100, max_value=100))
            lines.append(f"    {name}: Approx[int] = {value}")
        names.append(name)
    result = draw(st.sampled_from(names))
    lines.append(f"    return endorse({result})")
    return "\n".join(lines) + "\n"


def plain_result(source: str):
    namespace = {}
    exec(PRELUDE + source, namespace)
    return namespace["kernel"]()


def instrumented_result(source: str, config, seed=0):
    program = compile_program({"m": PRELUDE + source})
    with Simulator(config, seed=seed):
        return program.call("m", "kernel")


class TestBaselineFidelity:
    @given(int_kernel())
    @settings(max_examples=40, deadline=None)
    def test_precise_integer_kernels_match_plain_python(self, source):
        assert instrumented_result(source, BASELINE) == plain_result(source)

    @given(approx_kernel())
    @settings(max_examples=40, deadline=None)
    def test_approx_integer_kernels_match_at_baseline(self, source):
        # Baseline injects no faults; 32-bit wrapping only matters
        # beyond +/-2^31, which these kernels cannot reach.
        assert instrumented_result(source, BASELINE) == plain_result(source)


class TestOutputTotality:
    @given(approx_kernel(), st.integers(min_value=0, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_aggressive_runs_never_raise(self, source, seed):
        result = instrumented_result(source, AGGRESSIVE, seed=seed)
        assert isinstance(result, int)

    @given(approx_kernel(), st.integers(min_value=0, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_runs_are_seed_deterministic(self, source, seed):
        first = instrumented_result(source, MEDIUM, seed=seed)
        second = instrumented_result(source, MEDIUM, seed=seed)
        assert first == second


class TestFloatRounding:
    def test_approx_float_results_are_binary32(self):
        import struct

        source = textwrap.dedent(
            """
            def kernel() -> float:
                a: Approx[float] = 0.1
                b: Approx[float] = 0.2
                c: Approx[float] = a + b
                return endorse(c)
            """
        )
        result = instrumented_result(source, BASELINE)
        # The value must be representable in binary32 exactly.
        assert struct.unpack("<f", struct.pack("<f", result))[0] == result

    def test_precise_float_results_are_double(self):
        source = textwrap.dedent(
            """
            def kernel() -> float:
                a: float = 0.1
                b: float = 0.2
                return a + b
            """
        )
        assert instrumented_result(source, BASELINE) == 0.1 + 0.2
