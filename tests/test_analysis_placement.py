"""Tests for the data-placement analysis (profile, cost model, optimizer).

The Hypothesis suite pins the two monotonicity properties the greedy
optimizer relies on (ISSUE 10 satellite): demoting any storage node to
precise never *increases* the static reliability bound and never
*decreases* the modeled energy.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.costmodel import PlacementCostModel
from repro.analysis.flowgraph import FlowNode
from repro.analysis.placement import (
    DEFAULT_THRESHOLD,
    PlacementAnalysis,
    _demote_sources,
    placement_mechanisms,
)
from repro.analysis.profile import ResidencyProfile, profile_app
from repro.analysis.reliability import (
    LEVELS,
    app_flow_graph,
    app_output_id,
    app_reliability,
    soundness_check,
)
from repro.apps import app_by_name, load_sources
from repro.core.checker import check_modules


@pytest.fixture(scope="module")
def sor_analysis():
    return PlacementAnalysis(app_by_name("SOR"), level="aggressive")


@pytest.fixture(scope="module")
def fft_model():
    spec = app_by_name("FFT")
    graph = app_flow_graph(spec)
    return PlacementCostModel(
        graph, app_output_id(spec), LEVELS["aggressive"], profile_app(spec)
    )


# ----------------------------------------------------------------------
# Residency profiles
# ----------------------------------------------------------------------
class TestResidencyProfile:
    def test_profile_is_deterministic(self):
        spec = app_by_name("SOR")
        assert profile_app(spec).to_dict() == profile_app(spec).to_dict()

    def test_spans_bounded_by_run(self):
        profile = profile_app(app_by_name("SOR"))
        assert profile.ticks > 0
        for span in profile.label_span_ticks.values():
            assert 0 <= span <= profile.ticks

    def test_node_span_mapping(self):
        profile = ResidencyProfile(
            app="X",
            workload_seed=0,
            ticks=100,
            seconds_per_tick=1e-6,
            label_span_ticks={"array": 10, "Grid": 5},
        )

        def node(ident, kind):
            return FlowNode(
                ident=ident,
                kind=kind,
                module="m",
                line=1,
                column=0,
                qualifier="approx",
                mechanism="dram",
                label="x",
            )

        assert profile.node_span_ticks(node("alloc:m:1:0", "alloc")) == 10
        assert profile.node_span_ticks(node("field:Grid.cells", "field")) == 5
        # Unobserved labels fall back to the whole run (sound ceiling).
        assert profile.node_span_ticks(node("field:Other.x", "field")) == 100
        assert profile.node_span_ticks(node("local:m.f.x", "local")) == 100
        assert profile.node_residency_seconds(
            node("alloc:m:1:0", "alloc")
        ) == pytest.approx(10e-6)

    def test_profiled_residency_desaturates_fft_aggressive(self):
        spec = app_by_name("FFT")
        assumed = app_reliability(spec, ["aggressive"])[0]
        profiled = app_reliability(spec, ["aggressive"], profile="profiled")[0]
        assert assumed.saturated and assumed.bound == 1.0
        assert not profiled.saturated
        assert profiled.bound < 1.0

    def test_profiled_bound_never_above_assumed(self):
        spec = app_by_name("SOR")
        for level in ("mild", "medium", "aggressive"):
            assumed = app_reliability(spec, [level])[0]
            profiled = app_reliability(spec, [level], profile="profiled")[0]
            assert profiled.bound <= assumed.bound

    def test_profiled_soundness_holds(self):
        records = soundness_check(
            app_by_name("SOR"), ["aggressive"], fault_seeds=(1,), profile="profiled"
        )
        assert records and all(r.sound for r in records)


# ----------------------------------------------------------------------
# Cost-model monotonicity (Hypothesis)
# ----------------------------------------------------------------------
class TestCostModelMonotonicity:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_demotion_never_raises_bound_or_lowers_energy(self, fft_model, data):
        sites = list(fft_model.seed_sites)
        demoted = data.draw(
            st.sets(st.sampled_from(sites), max_size=len(sites) - 1)
        )
        extra = data.draw(
            st.sampled_from([s for s in sites if s not in demoted])
        )
        before = frozenset(demoted)
        after = frozenset(demoted | {extra})
        assert fft_model.bound(after) <= fft_model.bound(before)
        assert fft_model.energy(after) >= fft_model.energy(before)

    def test_full_demotion_is_precise(self, fft_model):
        everything = frozenset(fft_model.seed_sites)
        assert fft_model.bound(everything) == 0.0
        assert fft_model.energy(everything) == pytest.approx(1.0)
        assert fft_model.effective_approx(everything) == frozenset()


# ----------------------------------------------------------------------
# The placement optimizer
# ----------------------------------------------------------------------
class TestPlacementPlan:
    def test_plan_is_deterministic(self):
        spec = app_by_name("SOR")
        first = PlacementAnalysis(spec, level="medium").plan().to_dict()
        second = PlacementAnalysis(spec, level="medium").plan().to_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_aggressive_drives_bound_under_threshold(self, sor_analysis):
        plan = sor_analysis.plan()
        assert plan.bound_before > DEFAULT_THRESHOLD
        assert plan.feasible
        assert plan.bound_after <= DEFAULT_THRESHOLD
        assert plan.demotions

    def test_demotions_recheck_cleanly(self, sor_analysis):
        plan = sor_analysis.plan()
        demoted = [d.ident for d in plan.demotions]
        sources = sor_analysis.sources
        mutated = _demote_sources(
            sources, [sor_analysis.sites[i] for i in sorted(demoted)]
        )
        before = sum(src.count("Approx[") for src in sources.values())
        after = sum(src.count("Approx[") for src in mutated.values())
        assert before - after == len(demoted)
        recheck = check_modules(mutated)
        assert recheck.ok
        assert len(recheck.diagnostics) <= len(sor_analysis.result.diagnostics)

    def test_closures_are_site_sets_containing_their_root(self, sor_analysis):
        # Not every closure is feasible (a root fed by a skip-listed
        # module cannot demote — the optimizer marks it infeasible and
        # moves on), but every closure is a site set rooted at its site.
        for ident in sor_analysis.sites:
            if sor_analysis.graph.nodes.get(ident) is None:
                continue
            closure = sor_analysis.demotion_closure(ident)
            assert ident in closure
            assert closure <= set(sor_analysis.sites)

    def test_infeasible_roots_are_skipped_not_fatal(self):
        # SOR's make_grid return is fed by the skip-listed rand module:
        # its closure cannot re-check, so the optimizer must route
        # around it and still reach the threshold.
        analysis = PlacementAnalysis(app_by_name("SOR"), level="aggressive")
        closure = analysis.demotion_closure("return:sor.make_grid")
        assert not analysis.validate(closure)
        plan = analysis.plan()
        assert plan.feasible

    def test_all_precise_dram_costs_at_least_annotated(self, sor_analysis):
        plan = sor_analysis.plan()
        assert plan.energy_modeled_all_precise_dram >= plan.energy_modeled_before

    def test_decisions_cover_every_site(self, sor_analysis):
        plan = sor_analysis.plan()
        assert {d.ident for d in plan.decisions} == set(sor_analysis.sites)
        for decision in plan.decisions:
            assert decision.action in ("keep", "demote")
            if decision.action == "demote":
                assert decision.current != decision.proposed
                assert "Approx[" in decision.current
                assert "Approx[" not in decision.proposed


class TestPlacementVerify:
    def test_sor_mild_accepted_and_beats_all_precise_dram(self):
        analysis = PlacementAnalysis(app_by_name("SOR"), level="mild")
        verification = analysis.verify(fault_seed=1)
        assert verification.accepted
        assert verification.rounds == 0
        assert verification.repair_demotions == ()
        assert verification.beats_measured
        assert verification.beats_modeled


# ----------------------------------------------------------------------
# Tuner integration
# ----------------------------------------------------------------------
class TestPlacementMechanisms:
    def test_imagej_restricts_to_dram(self):
        spec = app_by_name("ImageJ")
        active = placement_mechanisms(app_flow_graph(spec), app_output_id(spec))
        assert active == frozenset({"dram"})

    def test_candidate_upgrades_respect_restriction(self):
        from repro.tuner.search import TUNABLE, candidate_upgrades

        levels = {strategy: 0 for strategy in TUNABLE}
        restricted = list(
            candidate_upgrades(levels, mechanisms=frozenset({"dram", "sram"}))
        )
        assert [strategy for strategy, _ in restricted] == ["dram", "sram"]
        unrestricted = list(candidate_upgrades(levels))
        assert [strategy for strategy, _ in unrestricted] == list(TUNABLE)

    def test_unknown_output_is_empty(self):
        spec = app_by_name("FFT")
        graph = app_flow_graph(spec)
        assert placement_mechanisms(graph, "return:no.such") == frozenset()
