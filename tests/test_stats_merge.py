"""Property tests for RunStats merging.

The executor aggregates split seed ranges by merging per-run snapshots;
these tests pin the algebra (associativity, zero identity) and check on
real runs that merging split ranges equals merging the unsplit serial
sequence — for raw counters, derived storage/operation totals, and the
energy model's output.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import app_by_name
from repro.energy.model import SERVER, estimate_energy
from repro.experiments.executor import Job, run_jobs
from repro.experiments.harness import run_app
from repro.hardware.config import AGGRESSIVE, MEDIUM
from repro.runtime.stats import RunStats

_COUNTER_FIELDS = [field.name for field in dataclasses.fields(RunStats)]


def _stats_strategy():
    counters = st.integers(min_value=0, max_value=10**9)
    return st.builds(RunStats, **{name: counters for name in _COUNTER_FIELDS})


class TestMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(_stats_strategy(), min_size=0, max_size=8), st.data())
    def test_split_merge_equals_unsplit(self, stats_list, data):
        split = data.draw(st.integers(min_value=0, max_value=len(stats_list)))
        left = RunStats.merge(stats_list[:split])
        right = RunStats.merge(stats_list[split:])
        assert left + right == RunStats.merge(stats_list)

    @settings(max_examples=25, deadline=None)
    @given(_stats_strategy(), _stats_strategy())
    def test_merge_is_commutative(self, a, b):
        assert a + b == b + a

    @settings(max_examples=25, deadline=None)
    @given(_stats_strategy())
    def test_zero_identity(self, stats):
        assert stats + RunStats() == stats
        assert RunStats.merge([stats]) == stats

    def test_merge_empty_is_zero(self):
        assert RunStats.merge([]) == RunStats()

    def test_add_rejects_non_stats(self):
        with pytest.raises(TypeError):
            RunStats() + 3

    @settings(max_examples=25, deadline=None)
    @given(_stats_strategy(), _stats_strategy())
    def test_counters_sum_exactly(self, a, b):
        merged = a + b
        for name in _COUNTER_FIELDS:
            assert getattr(merged, name) == getattr(a, name) + getattr(b, name)


class TestMergeOnRealRuns:
    """Split seed ranges vs the unsplit serial sequence, on real stats."""

    SPEC = dataclasses.replace(
        app_by_name("montecarlo"), name="MonteCarlo@merge-test", default_args=(500, 0)
    )
    SEEDS = (1, 2, 3, 4)

    @pytest.fixture(scope="class")
    def per_seed_stats(self):
        return [
            run_app(self.SPEC, MEDIUM, fault_seed=seed).stats for seed in self.SEEDS
        ]

    @pytest.mark.parametrize("split", [0, 1, 2, 4])
    def test_split_ranges_equal_serial_aggregate(self, per_seed_stats, split):
        serial = RunStats.merge(per_seed_stats)
        halves = RunStats.merge(per_seed_stats[:split]) + RunStats.merge(
            per_seed_stats[split:]
        )
        assert halves == serial
        # Derived quantities agree too: operation counts, storage bytes,
        # and the Section 5.4 energy totals.
        assert halves.ops_total == serial.ops_total
        assert (
            halves.dram_approx_byte_ticks + halves.sram_approx_byte_ticks
            == serial.dram_approx_byte_ticks + serial.sram_approx_byte_ticks
        )
        assert (
            estimate_energy(halves, AGGRESSIVE, SERVER).total
            == estimate_energy(serial, AGGRESSIVE, SERVER).total
        )

    def test_executor_stats_merge_matches_serial(self, per_seed_stats):
        jobs = [
            Job(spec=self.SPEC, config=MEDIUM, fault_seed=seed, task="stats")
            for seed in self.SEEDS
        ]
        parallel = run_jobs(jobs, workers=2)
        assert RunStats.merge(parallel) == RunStats.merge(per_seed_stats)
