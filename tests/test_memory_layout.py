"""Tests for cache-line object/array layout (paper Section 4.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.cacheline import CACHE_LINE_BYTES, CacheLine, LineMap
from repro.memory.layout import (
    ARRAY_HEADER_BYTES,
    VTABLE_POINTER_BYTES,
    FieldSpec,
    layout_array,
    layout_object,
)


def specs(*triples):
    return [FieldSpec(name, kind, approx) for name, kind, approx in triples]


class TestObjectLayout:
    def test_all_precise_object_has_no_approx_lines(self):
        line_map = layout_object([specs(("x", "int", False), ("y", "int", False))])
        assert line_map.approx_bytes == 0
        assert all(not line.approximate for line in line_map.lines)

    def test_header_is_precise_and_first(self):
        line_map = layout_object([specs(("x", "int", True))])
        first = line_map.lines[0]
        assert not first.approximate
        assert first.slots[0][0] == "__vtable__"
        assert first.slots[0][2] == VTABLE_POINTER_BYTES

    def test_small_approx_fields_demoted_into_precise_line(self):
        # vtable(8) + 2 precise ints (8) leaves 48 free bytes in line 0;
        # a couple of approximate ints fit there and are demoted.
        line_map = layout_object(
            [specs(("p1", "int", False), ("p2", "int", False), ("a1", "int", True))]
        )
        assert len(line_map.lines) == 1
        assert line_map.approx_bytes == 0
        assert line_map.demoted_bytes == 4
        assert not line_map.field_is_approx_storage("a1")

    def test_large_approx_group_gets_approx_lines(self):
        # 20 doubles = 160 bytes of approximate data: the 48 bytes after
        # the header are demoted, the rest goes to approximate lines.
        fields = [FieldSpec(f"a{i}", "double", True) for i in range(20)]
        line_map = layout_object([[FieldSpec("p", "int", False)] + fields])
        assert line_map.approx_bytes > 0
        assert any(line.approximate for line in line_map.lines)
        # Demoted + approximate bytes account for all 160 data bytes.
        assert line_map.approx_bytes + line_map.demoted_bytes == 160

    def test_precise_fields_before_approx_within_group(self):
        line_map = layout_object(
            [specs(("a", "float", True), ("p", "float", False))]
        )
        first = line_map.lines[0]
        names = [slot[0] for slot in first.slots]
        assert names.index("p") < names.index("a")

    def test_subclass_groups_not_reordered(self):
        base_fields = [FieldSpec(f"ba{i}", "double", True) for i in range(10)]
        sub_fields = [FieldSpec("sp", "int", False)]
        line_map = layout_object([base_fields, sub_fields])
        # The subclass's precise field must come after the base group's
        # lines, in a precise line.
        assert not line_map.line_of("sp").approximate
        base_line_indices = [line_map.line_of(f"ba{i}").index for i in range(10)]
        assert line_map.line_of("sp").index >= max(base_line_indices[:1])

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["int", "float", "double", "bool", "ref"]),
                st.booleans(),
            ),
            min_size=0,
            max_size=40,
        )
    )
    def test_every_field_lands_exactly_once(self, raw):
        fields = [FieldSpec(f"f{i}", kind, approx) for i, (kind, approx) in enumerate(raw)]
        line_map = layout_object([fields])
        placed = [
            name
            for line in line_map.lines
            for name, _off, _size, _w in line.slots
            if not name.startswith("__")
        ]
        assert sorted(placed) == sorted(f.name for f in fields)

    @given(
        st.lists(
            st.tuples(st.sampled_from(["int", "float", "double"]), st.booleans()),
            min_size=1,
            max_size=40,
        )
    )
    def test_precise_fields_never_in_approx_lines(self, raw):
        fields = [FieldSpec(f"f{i}", kind, approx) for i, (kind, approx) in enumerate(raw)]
        line_map = layout_object([fields])
        for line in line_map.lines:
            if line.approximate:
                assert all(wanted for _n, _o, _s, wanted in line.slots)

    def test_no_line_overflows(self):
        fields = [FieldSpec(f"f{i}", "double", i % 2 == 0) for i in range(50)]
        line_map = layout_object([fields])
        for line in line_map.lines:
            assert line.used_bytes <= CACHE_LINE_BYTES


class TestArrayLayout:
    def test_first_line_precise(self):
        line_map, _approx, _demoted = layout_array(100, "float", True)
        assert not line_map.lines[0].approximate

    def test_precise_array_fully_precise(self):
        line_map, approx, precise = layout_array(100, "float", False)
        assert approx == 0
        assert precise == 400

    def test_approx_array_mostly_approx(self):
        line_map, approx, demoted = layout_array(100, "float", True)
        # 400 data bytes; 48 fit in the header line (demoted).
        assert demoted == CACHE_LINE_BYTES - ARRAY_HEADER_BYTES
        assert approx == 400 - demoted

    def test_empty_array(self):
        line_map, approx, demoted = layout_array(0, "int", True)
        assert approx == 0
        assert len(line_map.lines) == 1

    @given(st.integers(min_value=0, max_value=5000), st.booleans())
    def test_data_conservation(self, length, approximate):
        line_map, approx, _x = layout_array(length, "int", approximate)
        data_bytes = 4 * length
        placed = sum(
            size
            for line in line_map.lines
            for name, _o, size, _w in line.slots
            if name.startswith("__data")
        )
        assert placed == data_bytes
        assert approx <= data_bytes


class TestCacheLinePrimitives:
    def test_fits_and_add(self):
        line = CacheLine(index=0, approximate=False)
        offset = line.add("a", 60, False)
        assert offset == 0
        assert line.fits(4)
        assert not line.fits(5)
        with pytest.raises(ValueError):
            line.add("b", 8, False)

    def test_linemap_lookup(self):
        line = CacheLine(index=0, approximate=True)
        line.add("x", 4, True)
        line_map = LineMap([line])
        assert line_map.field_is_approx_storage("x")
        assert not line_map.field_is_approx_storage("missing")
        assert line_map.total_bytes == CACHE_LINE_BYTES
