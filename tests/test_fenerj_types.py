"""Tests for the FEnerJ static semantics (paper Section 3.1)."""

import pytest

from repro.core.qualifiers import APPROX, CONTEXT, LOST, PRECISE, TOP
from repro.errors import FEnerJTypeError
from repro.fenerj.parser import parse_program
from repro.fenerj.syntax import Type
from repro.fenerj.typesys import ClassTable, TypeChecker, is_subtype


def check(source: str, allow_endorse: bool = False):
    program = parse_program(source)
    return TypeChecker(program, allow_endorse=allow_endorse).check_program()


def rejects(source: str, fragment: str = "", allow_endorse: bool = False):
    with pytest.raises(FEnerJTypeError) as exc_info:
        check(source, allow_endorse=allow_endorse)
    if fragment:
        assert fragment in str(exc_info.value)


class TestSubtyping:
    def test_precise_primitive_below_approx(self):
        assert is_subtype(None, Type(PRECISE, "int"), Type(APPROX, "int"))
        assert not is_subtype(None, Type(APPROX, "int"), Type(PRECISE, "int"))

    def test_reference_qualifiers_follow_ordering_only(self):
        assert not is_subtype(None, Type(PRECISE, "C"), Type(APPROX, "C"))
        assert is_subtype(None, Type(PRECISE, "C"), Type(TOP, "C"))

    def test_null_below_references(self):
        assert is_subtype(None, Type(PRECISE, "$null"), Type(APPROX, "C"))
        assert not is_subtype(None, Type(PRECISE, "$null"), Type(PRECISE, "int"))


class TestFieldRules:
    GOOD = """
    class C extends Object {
      precise int p;
      approx int a;
      context int c;
    }
    main C { %s }
    """

    def test_read_precise(self):
        assert check(self.GOOD % "this.p") == Type(PRECISE, "int")

    def test_context_adapts_through_precise_main(self):
        assert check(self.GOOD % "this.c") == Type(PRECISE, "int")

    def test_context_adapts_through_approx_main(self):
        source = self.GOOD.replace("main C", "main approx C") % "this.c"
        assert check(source) == Type(APPROX, "int")

    def test_write_approx_to_precise_rejected(self):
        rejects(self.GOOD % "this.p := this.a", "cannot assign")

    def test_write_precise_to_approx_ok(self):
        assert check(self.GOOD % "this.a := this.p") == Type(APPROX, "int")

    def test_write_through_top_receiver_rejected(self):
        source = """
        class C extends Object { context int c; }
        class D extends Object { top C ref; }
        main D { this.ref.c := 1 }
        """
        rejects(source, "lost")

    def test_read_through_top_receiver_gives_lost(self):
        source = """
        class C extends Object { context int c; }
        class D extends Object { top C ref; }
        main D { this.ref.c }
        """
        assert check(source) == Type(LOST, "int")

    def test_unknown_field_rejected(self):
        rejects(self.GOOD % "this.nope", "no field")


class TestConditionRule:
    def test_precise_condition_ok(self):
        source = """
        class C extends Object { precise int p; }
        main C { if (this.p == 0) { 1 } else { 2 } }
        """
        assert check(source) == Type(PRECISE, "int")

    def test_approx_condition_rejected(self):
        source = """
        class C extends Object { approx int a; }
        main C { if (this.a == 0) { 1 } else { 2 } }
        """
        rejects(source, "precise primitive")

    def test_branches_join(self):
        source = """
        class C extends Object { precise int p; approx int a; }
        main C { if (this.p == 0) { this.p } else { this.a } }
        """
        assert check(source) == Type(APPROX, "int")


class TestMethodRules:
    PAIR = """
    class Pair extends Object {
      context int x;
      approx int n;
      precise int getx() precise { this.x }
      approx int getx() approx { this.x }
      context int bump(context int amount) context {
        this.x := this.x + amount ; this.x
      }
    }
    """

    def test_precision_overloading_selects_variant(self):
        assert check(self.PAIR + "main Pair { this.getx() }") == Type(PRECISE, "int")
        assert check(self.PAIR + "main approx Pair { this.getx() }") == Type(APPROX, "int")

    def test_adapted_parameter_rejects_approx_into_precise_instance(self):
        source = self.PAIR + "main Pair { this.bump(this.n) }"
        rejects(source, "does not match parameter")

    def test_adapted_parameter_accepts_approx_into_approx_instance(self):
        source = self.PAIR + "main approx Pair { this.bump(this.n) }"
        assert check(source) == Type(APPROX, "int")

    def test_body_must_match_return_type(self):
        source = """
        class C extends Object {
          approx int a;
          precise int m() precise { this.a }
        }
        main C { 0 }
        """
        rejects(source, "body has type")

    def test_arity_checked(self):
        source = self.PAIR + "main Pair { this.bump(1, 2) }"
        rejects(source, "arguments")

    def test_method_body_checked_under_its_precision(self):
        # In the approx-precision body, a context field is approx and
        # may not flow into a precise return type.
        source = """
        class C extends Object {
          context int c;
          precise int m() approx { this.c }
        }
        main C { 0 }
        """
        rejects(source, "body has type")


class TestClassWellFormedness:
    def test_duplicate_class(self):
        rejects(
            "class C extends Object { } class C extends Object { } main C { 1 }",
            "duplicate class",
        )

    def test_inheritance_cycle(self):
        rejects(
            "class A extends B { } class B extends A { } main A { 1 }",
            "cycle",
        )

    def test_unknown_superclass(self):
        rejects("class A extends Ghost { } main A { 1 }", "unknown class")

    def test_field_shadowing_rejected(self):
        rejects(
            """
            class A extends Object { precise int x; }
            class B extends A { approx int x; }
            main B { 1 }
            """,
            "shadows",
        )

    def test_inherited_fields_visible(self):
        source = """
        class A extends Object { approx int x; }
        class B extends A { }
        main B { this.x }
        """
        assert check(source) == Type(APPROX, "int")

    def test_override_must_match(self):
        rejects(
            """
            class A extends Object { precise int m() precise { 1 } }
            class B extends A { precise float m() precise { 1.0 } }
            main B { 1 }
            """,
            "different return type",
        )

    def test_unknown_main_class(self):
        rejects("main Ghost { 1 }", "unknown main class")


class TestCastsAndEndorse:
    def test_upcast_to_approx(self):
        source = """
        class C extends Object { precise int p; }
        main C { (approx int) this.p }
        """
        assert check(source) == Type(APPROX, "int")

    def test_downcast_rejected(self):
        source = """
        class C extends Object { approx int a; }
        main C { (precise int) this.a }
        """
        rejects(source, "illegal cast")

    def test_endorse_rejected_by_default(self):
        source = """
        class C extends Object { approx int a; }
        main C { endorse(this.a) }
        """
        rejects(source, "endorse")

    def test_endorse_allowed_in_permissive_mode(self):
        source = """
        class C extends Object { approx int a; }
        main C { endorse(this.a) }
        """
        assert check(source, allow_endorse=True) == Type(PRECISE, "int")


class TestOperators:
    def test_approx_operand_makes_result_approx(self):
        source = """
        class C extends Object { precise int p; approx int a; }
        main C { this.p + this.a }
        """
        assert check(source) == Type(APPROX, "int")

    def test_float_promotion(self):
        source = """
        class C extends Object { precise float f; }
        main C { this.f + 1 }
        """
        assert check(source) == Type(PRECISE, "float")

    def test_comparison_yields_int(self):
        source = "class C extends Object { } main C { 1 < 2 }"
        assert check(source) == Type(PRECISE, "int")

    def test_operator_on_reference_rejected(self):
        source = "class C extends Object { } main C { this + 1 }"
        rejects(source, "non-primitive")
