"""Tests for the Section 5.4 energy model."""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.energy.model import MOBILE, SERVER, EnergyParameters, estimate_energy
from repro.errors import EnergyModelError
from repro.hardware.config import AGGRESSIVE, BASELINE, MEDIUM, MILD
from repro.runtime.stats import RunStats


def stats(
    int_approx=0,
    int_precise=0,
    fp_approx=0,
    fp_precise=0,
    dram_approx=0,
    dram_precise=0,
    sram_approx=0,
    sram_precise=0,
):
    return RunStats(
        int_ops_approx=int_approx,
        int_ops_precise=int_precise,
        fp_ops_approx=fp_approx,
        fp_ops_precise=fp_precise,
        dram_approx_byte_ticks=dram_approx,
        dram_precise_byte_ticks=dram_precise,
        sram_approx_byte_ticks=sram_approx,
        sram_precise_byte_ticks=sram_precise,
    )


FULLY_APPROX = stats(
    int_approx=1000, fp_approx=1000, dram_approx=1000, sram_approx=1000
)
FULLY_PRECISE = stats(
    int_precise=1000, fp_precise=1000, dram_precise=1000, sram_precise=1000
)


class TestBaselineInvariants:
    def test_precise_run_consumes_unit_energy(self):
        for config in (BASELINE, MILD, MEDIUM, AGGRESSIVE):
            breakdown = estimate_energy(FULLY_PRECISE, config)
            assert breakdown.total == pytest.approx(1.0)
            assert breakdown.savings == pytest.approx(0.0)

    def test_baseline_config_never_saves(self):
        breakdown = estimate_energy(FULLY_APPROX, BASELINE)
        assert breakdown.total == pytest.approx(1.0)

    def test_empty_run_is_unit_energy(self):
        breakdown = estimate_energy(stats(), MEDIUM)
        assert breakdown.total == pytest.approx(1.0)


class TestSavingsShape:
    def test_savings_grow_with_aggressiveness(self):
        totals = [
            estimate_energy(FULLY_APPROX, config).total
            for config in (MILD, MEDIUM, AGGRESSIVE)
        ]
        assert totals[0] > totals[1] > totals[2]

    def test_savings_in_paper_band_for_full_approximation(self):
        # The paper reports 9%-48% savings overall; a fully approximate
        # run is the upper envelope and should comfortably beat 9%.
        for config in (MILD, MEDIUM, AGGRESSIVE):
            savings = estimate_energy(FULLY_APPROX, config).savings
            assert 0.10 < savings < 0.60

    def test_fetch_decode_floor(self):
        # Even 100% approximate instructions keep their fetch/decode
        # energy: instruction energy cannot drop below 22/37 (int).
        breakdown = estimate_energy(
            stats(int_approx=1000), AGGRESSIVE
        )
        floor = 22.0 / 37.0
        assert breakdown.instruction_energy >= floor

    def test_fp_ops_save_more_than_int_ops(self):
        fp_run = estimate_energy(stats(fp_approx=1000), MEDIUM)
        int_run = estimate_energy(stats(int_approx=1000), MEDIUM)
        assert fp_run.instruction_energy < int_run.instruction_energy

    def test_dram_component_scales_with_fraction(self):
        half = estimate_energy(stats(dram_approx=500, dram_precise=500), MEDIUM)
        full = estimate_energy(stats(dram_approx=1000), MEDIUM)
        assert full.dram_energy < half.dram_energy < 1.0

    def test_mobile_weights_cpu_more(self):
        # With DRAM only 25% of system power, DRAM-heavy savings shrink.
        dram_heavy = stats(dram_approx=10_000, int_precise=100)
        server = estimate_energy(dram_heavy, MEDIUM, SERVER)
        mobile = estimate_energy(dram_heavy, MEDIUM, MOBILE)
        assert server.savings > mobile.savings

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_total_always_in_unit_interval(self, ia, ip, fa, fp):
        run = stats(int_approx=ia, int_precise=ip, fp_approx=fa, fp_precise=fp,
                    dram_approx=ia, dram_precise=ip, sram_approx=fa, sram_precise=fp)
        for config in (MILD, MEDIUM, AGGRESSIVE):
            total = estimate_energy(run, config).total
            assert 0.0 < total <= 1.0 + 1e-9

    def test_more_approximation_never_costs_more(self):
        less = stats(fp_approx=100, fp_precise=900, dram_approx=100, dram_precise=900)
        more = stats(fp_approx=900, fp_precise=100, dram_approx=900, dram_precise=100)
        assert (
            estimate_energy(more, MEDIUM).total < estimate_energy(less, MEDIUM).total
        )


class TestParameters:
    def test_shares_must_sum_to_one(self):
        with pytest.raises(EnergyModelError):
            EnergyParameters(cpu_share_of_system=0.5, dram_share_of_system=0.6)

    def test_fetch_decode_bound(self):
        with pytest.raises(EnergyModelError):
            EnergyParameters(int_op_units=20.0, fetch_decode_units=22.0)

    def test_sram_share_bound(self):
        with pytest.raises(EnergyModelError):
            EnergyParameters(sram_share_of_cpu=1.5)

    def test_paper_constants(self):
        assert SERVER.int_op_units == 37.0
        assert SERVER.fp_op_units == 40.0
        assert SERVER.fetch_decode_units == 22.0
        assert SERVER.sram_share_of_cpu == 0.35
        assert SERVER.cpu_share_of_system == 0.55
        assert MOBILE.dram_share_of_system == 0.25
