"""In-process tests for the simulation service (repro/service/).

Pins the tentpole guarantees:

* protocol validation and framing (exact float round trips),
* store hits answered inline, misses executed by warm workers and
  written through (second ask is a hit),
* a **mixed hit/miss batch of 32 requests whose answers are
  bit-identical to the serial harness** (the acceptance bar),
* request coalescing of identical in-flight misses,
* bounded admission with structured backpressure instead of hanging,
* per-request deadlines with graceful cancellation,
* crash-isolated workers (a worker death fails only its request, the
  pool respawns, the restart counter moves),
* live healthz/metrics/config over both the JSON ops and HTTP GET,
* harness routing (`--via-service`) returning bit-identical floats.

The daemon here runs in-process (`SimulationServer` + real sockets);
the subprocess lifecycle — boot, SIGTERM drain, exit code — is covered
by ``tests/test_service_lifecycle.py``.
"""

import dataclasses
import json
import socket
import threading
import time

import pytest

from repro.apps import app_by_name
from repro.experiments import harness
from repro.hardware.config import MEDIUM
from repro.service import (
    ServiceBackpressure,
    ServiceClient,
    ServiceConfig,
    ServiceDeadline,
    ServiceError,
    ServiceRequestFailed,
    SimulationServer,
    routed,
)
from repro.service.protocol import (
    CRASH_APP,
    PROTOCOL_VERSION,
    ProtocolError,
    SimRequest,
    decode_line,
    encode_line,
)

FFT = app_by_name("fft")

#: Fault-seed ranges are partitioned across tests so hit/miss
#: expectations against the module-scoped server stay deterministic.
BATCH_SEEDS = range(1, 33)  # the 32-request acceptance batch
SEED_MISS_THEN_HIT = 201
SEED_TRACE = 202
SEED_DEADLINE = 203
SEED_COALESCE = 204
SEED_AFTER_CRASH = 205


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("service") / "cache")
    config = ServiceConfig(
        port=0,
        workers=2,
        queue_bound=64,
        warm_apps=("fft",),
        cache_dir=cache_dir,
        default_deadline_ms=120_000,
    )
    srv = SimulationServer(config)
    srv.start()
    yield srv
    srv.initiate_drain()
    srv.drain(timeout=30)
    srv.stop()
    harness.clear_caches()


@pytest.fixture
def client(server):
    host, port = server.address
    with ServiceClient(host, port) as connection:
        yield connection


def _counter(server, name):
    return server.metrics_payload()["counters"].get(name, 0)


class TestProtocol:
    def test_rejects_unknown_app(self):
        with pytest.raises(ProtocolError):
            SimRequest.from_wire({"app": "no-such-app", "config": "medium"})

    def test_rejects_unknown_config(self):
        with pytest.raises(ProtocolError):
            SimRequest.from_wire({"app": "fft", "config": "warp-speed"})

    def test_rejects_non_integer_seeds(self):
        with pytest.raises(ProtocolError):
            SimRequest.from_wire({"app": "fft", "fault_seed": "3"})
        with pytest.raises(ProtocolError):
            SimRequest.from_wire({"app": "fft", "fault_seed": True})

    def test_rejects_bad_deadline(self):
        # 0 is a valid deadline since protocol v2: "no deadline".
        assert SimRequest.from_wire({"app": "fft", "deadline_ms": 0}).deadline_ms == 0
        with pytest.raises(ProtocolError):
            SimRequest.from_wire({"app": "fft", "deadline_ms": -1})
        with pytest.raises(ProtocolError):
            SimRequest.from_wire({"app": "fft", "deadline_ms": "soon"})

    def test_crash_probe_gated_by_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_ALLOW_CRASH", raising=False)
        with pytest.raises(ProtocolError):
            SimRequest.from_wire({"app": CRASH_APP})
        monkeypatch.setenv("REPRO_SERVICE_ALLOW_CRASH", "1")
        assert SimRequest.from_wire({"app": CRASH_APP}).is_crash_probe

    def test_canonicalises_app_name(self):
        request = SimRequest.from_wire({"app": "fft", "config": "mild"})
        assert request.app == FFT.name

    def test_floats_round_trip_exactly(self):
        value = 0.1234567890123456789 / 3.0
        line = encode_line({"qos": value})
        assert decode_line(line)["qos"] == value


class TestIntrospection:
    def test_healthz(self, server, client):
        health = client.healthz()
        assert health["status"] == "serving"
        assert health["workers_alive"] == 2
        assert health["protocol"] == PROTOCOL_VERSION

    def test_config(self, server, client):
        config = client.server_config()
        assert config["workers"] == 2
        assert config["store"] == server.config.cache_dir
        assert tuple(config["address"]) == server.address

    def test_metrics_shape(self, client):
        metrics = client.metrics()
        assert set(metrics) == {"counters", "histograms", "gauges", "derived"}
        assert "queue_depth" in metrics["gauges"]
        assert "p99" in metrics["derived"]["latency_ms"]

    def test_http_get_endpoints(self, server):
        host, port = server.address
        for path, expect in (
            ("/healthz", b'"status"'),
            ("/metrics", b'"counters"'),
            ("/config", b'"workers"'),
        ):
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode("ascii"))
                data = sock.makefile("rb").read()
            assert data.startswith(b"HTTP/1.0 200 OK"), path
            assert expect in data
            body = data.split(b"\r\n\r\n", 1)[1]
            json.loads(body)  # the body is the op's JSON payload

    def test_http_get_unknown_path_is_404(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"GET /nope HTTP/1.0\r\n\r\n")
            data = sock.makefile("rb").read()
        assert data.startswith(b"HTTP/1.0 404")

    def test_unknown_op_is_bad_request(self, server):
        response = server.handle_message({"op": "dance", "id": 9})
        assert response == {
            "ok": False,
            "error": {"code": "bad_request", "message": "unknown op 'dance'"},
            "id": 9,
        }


class TestSubmit:
    def test_bad_app_is_structured_error(self, client):
        with pytest.raises(ServiceRequestFailed) as excinfo:
            client.submit("no-such-app")
        assert excinfo.value.code == "bad_request"

    def test_miss_then_hit(self, server, client):
        first = client.submit("fft", "medium", fault_seed=SEED_MISS_THEN_HIT)
        assert first.cached is False
        assert first.app == FFT.name and first.config == "medium"
        assert isinstance(first.qos, float)
        assert len(first.digest) == 64
        assert first.ops > 0 and first.server_ms is not None

        second = client.submit("fft", "medium", fault_seed=SEED_MISS_THEN_HIT)
        assert second.cached is True
        assert second.qos == first.qos  # bit-identical from the store
        assert second.digest == first.digest

    def test_trace_summary_forces_execution_then_caches(self, server, client):
        first = client.submit(
            "fft", "medium", fault_seed=SEED_TRACE, want_trace_summary=True
        )
        assert first.cached is False
        assert first.trace_summary is not None
        assert first.trace_summary["events"] > 0

        second = client.submit(
            "fft", "medium", fault_seed=SEED_TRACE, want_trace_summary=True
        )
        assert second.cached is True
        assert second.trace_summary == first.trace_summary
        assert second.qos == first.qos


class TestBatchBitIdentity:
    """The acceptance bar: >=32 mixed hit/miss, bit-identical answers."""

    def test_mixed_batch_matches_serial_harness(self, server, client):
        from repro import store as store_mod

        seeds = list(BATCH_SEEDS)
        half = seeds[: len(seeds) // 2]

        # Pre-compute half the cells through the serial harness into the
        # daemon's own store directory, so the batch is genuinely mixed:
        # the first half answers from the store, the second half goes to
        # the warm workers.  Drop the in-memory memos first: the server's
        # hit path needs the precise *baseline entry on disk*, which a
        # memo-served reference would never write.
        harness.clear_caches()
        serial = {}
        with store_mod.activated(server.config.cache_dir):
            for seed in half:
                serial[seed] = harness.qos_error(FFT, MEDIUM, fault_seed=seed)

        results = client.submit_batch(
            [
                {"app": "fft", "config": "medium", "fault_seed": seed}
                for seed in seeds
            ]
        )
        assert len(results) == len(seeds) >= 32
        by_seed = {result.fault_seed: result for result in results}
        assert [result.fault_seed for result in results] == seeds  # item order
        assert all(by_seed[seed].cached for seed in half)
        assert not any(by_seed[seed].cached for seed in seeds[len(half):])

        # The other half of the serial reference is computed locally
        # with *no* store: a fresh simulation, nothing shared with the
        # daemon but the code itself.
        for seed in seeds[len(half):]:
            serial[seed] = harness.qos_error(FFT, MEDIUM, fault_seed=seed)

        for seed in seeds:
            assert by_seed[seed].qos == serial[seed], (
                f"seed {seed}: daemon {by_seed[seed].qos!r} != "
                f"serial {serial[seed]!r}"
            )

    def test_batch_reports_partial_errors_in_place(self, client):
        results = client.submit_batch(
            [
                {"app": "fft", "config": "medium", "fault_seed": 1},
                {"app": "no-such-app"},
            ],
            raise_on_error=False,
        )
        assert results[0].qos == pytest.approx(results[0].qos)  # a result
        assert results[1]["code"] == "bad_request"

    def test_empty_batch_is_bad_request(self, server):
        response = server.handle_message({"op": "batch", "items": []})
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"


class TestCoalescing:
    def test_identical_inflight_misses_share_one_task(self, server):
        coalesced_before = _counter(server, "service.coalesced")
        request = SimRequest.from_wire(
            {"app": "fft", "config": "medium", "fault_seed": SEED_COALESCE}
        )
        now = time.monotonic()
        first = server._admit(request, now)
        second = server._admit(request, now)
        try:
            assert second is first  # the same in-flight task object
            assert _counter(server, "service.coalesced") == coalesced_before + 1
        finally:
            assert first.event.wait(60)
        assert first.response["ok"] is True

    def test_concurrent_clients_get_identical_answers(self, server):
        host, port = server.address
        answers = []

        def ask():
            with ServiceClient(host, port) as connection:
                answers.append(
                    connection.submit("fft", "mild", fault_seed=SEED_COALESCE)
                )

        threads = [threading.Thread(target=ask) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(answers) == 3
        assert len({answer.qos for answer in answers}) == 1
        assert len({answer.digest for answer in answers}) == 1


class TestBackpressureAndDeadlines:
    def test_full_queue_rejects_with_retry_hint(self, tmp_path):
        # A deliberately tiny daemon: one worker, a queue of one, no
        # store (so every request is a miss and must occupy capacity).
        config = ServiceConfig(
            port=0, workers=1, queue_bound=1, warm_apps=("fft",), cache_dir=None
        )
        with SimulationServer(config) as srv:
            host, port = srv.address
            with ServiceClient(host, port) as connection:
                outcomes = connection.submit_batch(
                    [
                        {"app": "fft", "config": "medium", "fault_seed": seed}
                        for seed in range(1, 9)
                    ],
                    raise_on_error=False,
                )
            ok = [o for o in outcomes if not isinstance(o, dict)]
            rejected = [o for o in outcomes if isinstance(o, dict)]
            assert ok, "some requests must be admitted"
            assert rejected, "an 8-deep burst must overflow a 1-deep queue"
            for error in rejected:
                assert error["code"] == "overloaded"
                assert error["retry_after_s"] > 0
            assert _counter(srv, "service.rejected") == len(rejected)

            # Draining rejects new work outright (structured, no hang).
            srv.initiate_drain()
            with ServiceClient(host, port) as connection:
                with pytest.raises(ServiceBackpressure):
                    connection.submit("fft", "medium", fault_seed=99)

    def test_deadline_expires_but_execution_warms_store(self, server, client):
        expired_before = _counter(server, "service.deadline_expired")
        with pytest.raises(ServiceDeadline):
            client.submit("fft", "medium", fault_seed=SEED_DEADLINE, deadline_ms=1)
        assert _counter(server, "service.deadline_expired") == expired_before + 1
        # Graceful cancellation: only the wait was abandoned.  The run
        # completed in the background, so asking again succeeds (and is
        # typically already a store hit).
        result = client.submit("fft", "medium", fault_seed=SEED_DEADLINE)
        assert isinstance(result.qos, float)

    def test_metrics_track_hits_and_latency(self, server, client):
        metrics = client.metrics()
        counters = metrics["counters"]
        assert counters["service.requests_total"] > 0
        assert counters["service.hits"] > 0
        assert counters["service.misses"] > 0
        assert 0.0 < metrics["derived"]["hit_ratio"] < 1.0
        assert metrics["derived"]["latency_ms"]["p50"] is not None
        assert metrics["derived"]["latency_ms"]["p99"] >= metrics["derived"][
            "latency_ms"
        ]["p50"]
        assert metrics["gauges"]["workers_alive"] == 2


class TestCrashIsolation:
    def test_worker_death_fails_request_and_pool_recovers(
        self, server, client, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVICE_ALLOW_CRASH", "1")
        restarts_before = _counter(server, "service.worker_restarts")
        with pytest.raises(ServiceRequestFailed) as excinfo:
            client.submit(CRASH_APP, "medium")
        assert excinfo.value.code == "worker_crashed"
        # Each attempt killed a worker: retry_budget=2 means 3 deaths,
        # each observed by the pool as a restart.
        assert (
            _counter(server, "service.worker_restarts")
            == restarts_before + server.config.retry_budget + 1
        )
        assert (
            _counter(server, "service.worker_crash_failures") >= 1
        )
        # The pool respawns on demand: real work still succeeds, and a
        # two-miss batch occupies both slots, so the full complement
        # comes back.
        results = client.submit_batch(
            [
                {"app": "fft", "config": "medium", "fault_seed": seed}
                for seed in (SEED_AFTER_CRASH, SEED_AFTER_CRASH + 1)
            ]
        )
        assert all(result.cached is False for result in results)
        assert client.healthz()["workers_alive"] == 2

    def test_crash_probe_rejected_without_opt_in(self, client, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_ALLOW_CRASH", raising=False)
        with pytest.raises(ServiceRequestFailed) as excinfo:
            client.submit(CRASH_APP, "medium")
        assert excinfo.value.code == "bad_request"


class TestRouting:
    def test_eligibility_is_conservative(self):
        from repro.service.routing import ServiceRoute

        route = ServiceRoute(client=None)
        good = harness.RunKey(spec=FFT, config=MEDIUM, fault_seed=1, workload_seed=0)
        assert route.accepts(good)

        local_spec = dataclasses.replace(FFT, name="FFT@local-test")
        assert not route.accepts(dataclasses.replace(good, spec=local_spec))

        ablation = dataclasses.replace(MEDIUM, name="custom-ablation")
        assert not route.accepts(dataclasses.replace(good, config=ablation))

    def test_routed_mean_qos_is_bit_identical(self, server):
        local = harness.mean_qos(FFT, MEDIUM, runs=3)
        host, port = server.address
        with ServiceClient(host, port) as connection:
            with routed(connection):
                via_daemon = harness.mean_qos(FFT, MEDIUM, runs=3)
        assert via_daemon == local
        assert harness.mean_qos(FFT, MEDIUM, runs=3) == local  # route cleared

    def test_routed_qos_error_single_key(self, server):
        local = harness.qos_error(FFT, MEDIUM, fault_seed=2)
        host, port = server.address
        with ServiceClient(host, port) as connection:
            with routed(connection):
                assert harness.qos_error(FFT, MEDIUM, fault_seed=2) == local


class TestClientErrors:
    def test_connection_refused_is_helpful(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServiceError, match="repro serve"):
            ServiceClient("127.0.0.1", free_port, connect_timeout=0.5)
