"""The online QoS-SLO tuner: state machine, serialization, convergence.

Pins the tentpole guarantees of the budget-based submit redesign:

* the controller is a **deterministic state machine** — replaying the
  same QoS feedback reproduces every state digest bit-identically,
* :class:`~repro.tuner.state.TunerState` round-trips through its
  self-validating wire payload, and the :class:`TunerBank` adoption
  rule (strictly more observations wins) holds,
* **hysteresis**: one bad fault draw changes nothing; a violation
  streak steps the largest bound contributor down,
* **static-bound pruning** cuts the explored-config count (provably
  non-certifiable vectors are never simulated),
* the acceptance bar: on >= 7 of the 9 paper apps, tuning under a
  budget equal to the measured Medium QoS error converges within the
  bounded observation budget to energy at or below uniform Medium
  while the observed mean QoS stays within budget.
"""

import dataclasses

import pytest

from repro.apps import ALL_APPS, app_by_name
from repro.energy.model import SERVER, estimate_energy
from repro.experiments import harness
from repro.experiments.harness import RunKey, mean_qos, run_key
from repro.hardware.config import BASELINE, MEDIUM
from repro.tuner import (
    MAX_OBSERVATIONS,
    TRIAL_SAMPLES,
    VIOLATION_STREAK,
    OnlineTuner,
    TunerBank,
    TunerState,
    converge,
)
from repro.tuner.search import TUNABLE, compose_config, levels_energy
from repro.tuner.state import PHASE_EXPLORE, PHASE_STEADY

FFT = app_by_name("fft")


@pytest.fixture(scope="module")
def fft_context():
    """Baseline profile + flow graph shared across controller tests."""
    stats = run_key(
        RunKey(spec=FFT, config=BASELINE, fault_seed=0, workload_seed=0)
    ).stats
    probe = OnlineTuner(FFT, 0.05, baseline_stats=stats)
    yield stats, probe._flow_graph()
    harness.clear_caches()


def _drive(tuner, feedback, steps):
    """Feed ``steps`` synthetic observations; returns the digest trail."""
    digests = []
    for index in range(steps):
        levels, fault_seed, workload_seed = tuner.next_probe()
        tuner.observe(feedback(levels, fault_seed, index))
        digests.append(tuner.state.digest)
    return digests


class TestDeterminism:
    def test_replay_reproduces_every_digest(self, fft_context):
        stats, graph = fft_context
        feedback = lambda levels, seed, index: 0.001 * sum(levels.values())

        def fresh():
            return OnlineTuner(FFT, 0.05, graph=graph, baseline_stats=stats)

        first = _drive(fresh(), feedback, 30)
        second = _drive(fresh(), feedback, 30)
        assert first == second

    def test_probe_is_pure(self, fft_context):
        stats, graph = fft_context
        tuner = OnlineTuner(FFT, 0.05, graph=graph, baseline_stats=stats)
        assert tuner.next_probe() == tuner.next_probe()

    def test_explore_seed_schedule_matches_mean_qos(self, fft_context):
        """Trial sample k runs fault seed k+1 — the mean_qos schedule."""
        stats, graph = fft_context
        tuner = OnlineTuner(FFT, 0.05, graph=graph, baseline_stats=stats)
        seeds = []
        for _ in range(TRIAL_SAMPLES):
            _, fault_seed, workload_seed = tuner.next_probe()
            assert workload_seed == 0
            seeds.append(fault_seed)
            tuner.observe(0.0)
        assert seeds == list(range(1, TRIAL_SAMPLES + 1))


class TestStateWire:
    def test_payload_round_trip(self, fft_context):
        stats, graph = fft_context
        tuner = OnlineTuner(FFT, 0.05, graph=graph, baseline_stats=stats)
        _drive(tuner, lambda levels, seed, index: 0.01, 7)
        state = tuner.state
        restored = TunerState.from_payload(state.to_payload())
        assert restored == state
        assert restored.digest == state.digest
        assert restored.identity == state.identity

    def test_identity_is_stable_while_digest_advances(self, fft_context):
        stats, graph = fft_context
        tuner = OnlineTuner(FFT, 0.05, graph=graph, baseline_stats=stats)
        identity = tuner.state.identity
        before = tuner.state.digest
        _drive(tuner, lambda levels, seed, index: 0.0, 3)
        assert tuner.state.identity == identity
        assert tuner.state.digest != before

    def test_tampered_payload_is_refused(self, fft_context):
        stats, graph = fft_context
        tuner = OnlineTuner(FFT, 0.05, graph=graph, baseline_stats=stats)
        payload = tuner.state.to_payload()
        payload["state"]["observations"] = 999
        with pytest.raises(ValueError, match="digest mismatch"):
            TunerState.from_payload(payload)

    def test_bank_adoption_prefers_more_observations(self, fft_context):
        stats, graph = fft_context
        ahead = OnlineTuner(FFT, 0.05, graph=graph, baseline_stats=stats)
        _drive(ahead, lambda levels, seed, index: 0.01, 9)

        bank = TunerBank()
        local = bank.obtain(FFT, 0.05)
        assert local.state.observations == 0

        # A fresher replica snapshot is adopted...
        assert bank.install(ahead.state.to_payload())
        assert bank.obtain(FFT, 0.05).state.digest == ahead.state.digest
        # ...a stale one is not (but the push still answers stored=true:
        # the local state is at least as fresh).
        behind = OnlineTuner(FFT, 0.05, graph=graph, baseline_stats=stats)
        _drive(behind, lambda levels, seed, index: 0.01, 2)
        assert bank.install(behind.state.to_payload())
        assert bank.obtain(FFT, 0.05).state.digest == ahead.state.digest

    def test_bank_refuses_garbage(self):
        bank = TunerBank()
        assert not bank.install({"kind": "tuner_state", "schema": 1})
        assert not bank.install("nonsense")
        assert not bank.install(None)


def _steady_tuner(stats, graph, budget=0.05):
    """A converged controller (synthetic all-pass feedback)."""
    tuner = OnlineTuner(FFT, budget, graph=graph, baseline_stats=stats)
    for _ in range(MAX_OBSERVATIONS):
        if tuner.state.converged:
            break
        tuner.next_probe()
        tuner.observe(0.0)
    assert tuner.state.phase == PHASE_STEADY and tuner.state.converged
    return tuner


class TestHysteresis:
    def test_single_violation_changes_nothing(self, fft_context):
        stats, graph = fft_context
        tuner = _steady_tuner(stats, graph)
        committed = tuner.state.committed
        events = tuner.observe(tuner.qos_budget * 10)
        assert events["violations"] == 1 and events["backoffs"] == 0
        assert tuner.state.committed == committed
        assert tuner.state.violation_streak == 1
        # A good draw resets the streak.
        tuner.observe(0.0)
        assert tuner.state.violation_streak == 0

    def test_violation_streak_steps_down(self, fft_context):
        stats, graph = fft_context
        tuner = _steady_tuner(stats, graph)
        committed = tuner.state.committed
        backoffs = 0
        for _ in range(VIOLATION_STREAK):
            backoffs += tuner.observe(tuner.qos_budget * 10)["backoffs"]
        assert backoffs == 1
        assert sum(tuner.state.committed) == sum(committed) - 1
        # The vacated level is rejected: exploration cannot instantly
        # re-commit what measurement just demoted.
        demoted = [
            (TUNABLE[i], committed[i])
            for i in range(len(TUNABLE))
            if tuner.state.committed[i] != committed[i]
        ]
        assert demoted[0] in tuner.state.rejected

    def test_sustained_headroom_reopens_exploration(self, fft_context):
        from repro.tuner.controller import RELAX_STREAK

        stats, graph = fft_context
        tuner = _steady_tuner(stats, graph)
        # Force a rejection on the books so a relax has something to clear.
        tuner.state = dataclasses.replace(
            tuner.state, rejected=tuner.state.rejected + (("dram", 9),)
        )
        relaxes = 0
        for _ in range(RELAX_STREAK):
            relaxes += tuner.observe(0.0)["relaxes"]
        assert relaxes == 1
        assert ("dram", 9) not in tuner.state.rejected


class TestPruning:
    def test_static_bounds_cut_explored_configs(self, tmp_path):
        """prune=True explores (and simulates) strictly fewer configs."""
        from repro import store as run_store

        run_store.configure(str(tmp_path / "store"))
        try:
            pruned = converge(OnlineTuner(FFT, 0.10, prune=True))
            graph = pruned._flow_graph()
            stats = pruned.baseline_stats()
            free = converge(
                OnlineTuner(FFT, 0.10, graph=graph, baseline_stats=stats, prune=False)
            )
        finally:
            harness.clear_caches()
        assert pruned.state.pruned > 0
        assert free.state.pruned == 0
        assert pruned.state.explored < free.state.explored
        assert pruned.state.observations < free.state.observations


@pytest.mark.slow
class TestConvergenceAcceptance:
    def test_budget_mode_matches_uniform_medium_on_most_apps(self, tmp_path):
        """>= 7 of 9 apps: converged energy <= uniform Medium, QoS within
        budget, inside the bounded observation budget."""
        from repro import store as run_store

        run_store.configure(str(tmp_path / "store"))
        passing, report = 0, []
        try:
            for spec in ALL_APPS:
                # ImageJ's Medium error is exactly 0.0; the tuner needs
                # a positive budget, and an epsilon one demands the
                # same thing: zero observed error.
                budget = mean_qos(spec, MEDIUM, runs=TRIAL_SAMPLES) or 1e-9
                tuner = converge(OnlineTuner(spec, budget))
                state = tuner.state
                assert state.converged, spec.name
                assert state.observations <= MAX_OBSERVATIONS, spec.name
                levels = state.levels_dict()
                energy = levels_energy(tuner.baseline_stats(), levels)
                medium_energy = estimate_energy(
                    tuner.baseline_stats(), MEDIUM, SERVER
                ).total
                measured = mean_qos(
                    spec,
                    compose_config(levels, name=f"tuned:{spec.name}"),
                    runs=TRIAL_SAMPLES,
                )
                ok = energy <= medium_energy + 1e-9 and measured <= budget + 1e-12
                passing += ok
                report.append(
                    f"{spec.name}: energy {energy:.4f} vs medium "
                    f"{medium_energy:.4f}, qos {measured:.4f} vs budget "
                    f"{budget:.4f}, obs {state.observations} -> "
                    f"{'ok' if ok else 'MISS'}"
                )
        finally:
            harness.clear_caches()
        assert passing >= 7, "\n".join(report)
