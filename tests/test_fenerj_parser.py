"""Tests for the FEnerJ lexer and parser."""

import pytest

from repro.core.qualifiers import APPROX, CONTEXT, PRECISE, TOP
from repro.errors import FEnerJSyntaxError
from repro.fenerj.lexer import tokenize
from repro.fenerj.parser import parse_expression, parse_program
from repro.fenerj.syntax import (
    BinOp,
    Cast,
    FieldRead,
    FieldWrite,
    FloatLit,
    If,
    IntLit,
    MethodCall,
    New,
    NullLit,
    Seq,
    Var,
)


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("class C extends Object { approx int x; }")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "kw"  # class
        assert tokens[1].kind == "ident"  # C
        assert tokens[-1].kind == "eof"

    def test_numbers(self):
        tokens = tokenize("42 3.25")
        assert tokens[0].kind == "int" and tokens[0].text == "42"
        assert tokens[1].kind == "float" and tokens[1].text == "3.25"

    def test_field_access_after_int(self):
        # "1.f" must not lex the dot into the number.
        tokens = tokenize("x.f")
        assert [t.text for t in tokens[:3]] == ["x", ".", "f"]

    def test_two_char_operators(self):
        tokens = tokenize("a := b == c <= d")
        texts = [t.text for t in tokens if t.kind == "punct"]
        assert texts == [":=", "==", "<="]

    def test_comments_ignored(self):
        tokens = tokenize("a // comment here\nb")
        assert [t.text for t in tokens[:2]] == ["a", "b"]

    def test_illegal_character(self):
        with pytest.raises(FEnerJSyntaxError):
            tokenize("a @ b")

    def test_line_numbers(self):
        tokens = tokenize("a\nb")
        assert tokens[0].line == 1
        assert tokens[1].line == 2


class TestExpressionParser:
    def test_literals(self):
        assert parse_expression("null") == NullLit()
        assert parse_expression("5") == IntLit(5)
        assert parse_expression("2.5") == FloatLit(2.5)
        assert parse_expression("this") == Var("this")
        assert parse_expression("x") == Var("x")

    def test_new_with_and_without_qualifier(self):
        assert parse_expression("new C()") == New(PRECISE, "C")
        assert parse_expression("new approx C()") == New(APPROX, "C")
        assert parse_expression("new context C()") == New(CONTEXT, "C")

    def test_field_read_chain(self):
        expr = parse_expression("this.a.b")
        assert expr == FieldRead(FieldRead(Var("this"), "a"), "b")

    def test_field_write_right_associative(self):
        expr = parse_expression("this.a := this.b := 1")
        assert isinstance(expr, FieldWrite)
        assert isinstance(expr.value, FieldWrite)

    def test_write_requires_field_target(self):
        with pytest.raises(FEnerJSyntaxError):
            parse_expression("x := 1")

    def test_method_call(self):
        expr = parse_expression("this.m(1, 2)")
        assert expr == MethodCall(Var("this"), "m", (IntLit(1), IntLit(2)))

    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == BinOp("+", IntLit(1), BinOp("*", IntLit(2), IntLit(3)))

    def test_comparison(self):
        expr = parse_expression("1 + 1 == 2")
        assert expr.op == "=="

    def test_sequence_right_associative(self):
        expr = parse_expression("1 ; 2 ; 3")
        assert isinstance(expr, Seq)
        assert expr.first == IntLit(1)
        assert isinstance(expr.second, Seq)

    def test_cast(self):
        expr = parse_expression("(approx int) this.x")
        assert isinstance(expr, Cast)
        assert expr.type.qualifier is APPROX
        assert expr.type.base == "int"

    def test_parenthesized(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_if(self):
        expr = parse_expression("if (1 < 2) { 3 } else { 4 }")
        assert isinstance(expr, If)
        assert expr.then == IntLit(3)

    def test_endorse(self):
        from repro.fenerj.syntax import Endorse

        expr = parse_expression("endorse(this.a)")
        assert isinstance(expr, Endorse)

    def test_trailing_input_rejected(self):
        with pytest.raises(FEnerJSyntaxError):
            parse_expression("1 2")


class TestProgramParser:
    def test_full_program(self):
        program = parse_program(
            """
            class Pair extends Object {
              context int x;
              approx float f;
              precise int get() precise { this.x }
              approx int geta() approx { this.x }
            }
            main Pair { this.get() }
            """
        )
        assert program.main_class == "Pair"
        assert program.main_qualifier is PRECISE
        pair = program.class_decl("Pair")
        assert pair.superclass == "Object"
        assert [f.name for f in pair.fields] == ["x", "f"]
        assert pair.fields[0].type.qualifier is CONTEXT
        assert pair.methods[0].precision is PRECISE
        assert pair.methods[1].precision is APPROX

    def test_approx_main(self):
        program = parse_program(
            "class C extends Object { } main approx C { 1 }"
        )
        assert program.main_qualifier is APPROX

    def test_method_params(self):
        program = parse_program(
            """
            class C extends Object {
              precise int add(precise int a, approx int b) context { a }
            }
            main C { 0 }
            """
        )
        method = program.class_decl("C").methods[0]
        assert method.params[0][0].qualifier is PRECISE
        assert method.params[1][0].qualifier is APPROX
        assert method.precision is CONTEXT

    def test_default_method_precision_is_precise(self):
        program = parse_program(
            "class C extends Object { precise int m() { 1 } } main C { 0 }"
        )
        assert program.class_decl("C").methods[0].precision is PRECISE

    def test_missing_main_rejected(self):
        with pytest.raises(FEnerJSyntaxError):
            parse_program("class C extends Object { }")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(FEnerJSyntaxError):
            parse_program("main C { 1 } class D extends Object { }")
