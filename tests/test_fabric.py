"""Unit tests for the fabric's consistent-hash shard map.

Pins the properties FABRIC.md promises operators:

* **Determinism** — assignment is a pure function of (node labels,
  vnodes, digest): identical within a process, across instances, and
  across *separate Python processes* (no ``PYTHONHASHSEED``
  sensitivity — SHA-256 all the way down).
* **Stability under leave** — removing a node reassigns exactly the
  keys that were homed on it, and every one of them lands on a
  surviving node; no other key moves.
* **Stability under join** — adding a node moves keys only *to* the
  new node (~1/N of the keyspace), never between existing nodes.
* **Succession** — the failover order starts at the home node, visits
  every node exactly once, and is itself deterministic.
* **Balance** — with the default 64 vnodes no node's share of a large
  keyspace collapses or explodes.

Also covers :class:`NodeAddress` parsing, :class:`FabricConfig`
validation, and the CLI-vs-package default-constant agreement.
"""

import hashlib
import json
import subprocess
import sys

import pytest

from repro import cli
from repro.errors import ReproError
from repro.fabric import FabricConfig, NodeAddress, ShardMap
from repro.fabric.coordinator import DEFAULT_FABRIC_PORT
from repro.fabric.hashring import DEFAULT_VNODES

NODES = ["10.0.0.1:7737", "10.0.0.2:7737", "10.0.0.3:7737", "10.0.0.4:7737"]


def _digests(count, salt=""):
    return [
        hashlib.sha256(f"{salt}key-{index}".encode()).hexdigest()
        for index in range(count)
    ]


class TestAssignment:
    def test_deterministic_within_process(self):
        digests = _digests(200)
        first = ShardMap(NODES)
        second = ShardMap(list(reversed(NODES)))  # order must not matter
        for digest in digests:
            assert first.assign(digest) == second.assign(digest)

    def test_deterministic_across_processes(self):
        """A separate interpreter computes the identical assignment map."""
        digests = _digests(50)
        local = {digest: ShardMap(NODES).assign(digest) for digest in digests}
        script = (
            "import json,sys;"
            "from repro.fabric import ShardMap;"
            "nodes,digests=json.loads(sys.argv[1]);"
            "m=ShardMap(nodes);"
            "print(json.dumps({d:m.assign(d) for d in digests}))"
        )
        output = subprocess.run(
            [sys.executable, "-c", script, json.dumps([NODES, digests])],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        assert json.loads(output) == local

    def test_cli_shards_matches_package(self):
        """``repro fabric shards`` prints the same map the package computes."""
        digests = _digests(8)
        argv = ["fabric", "shards"]
        for node in NODES:
            argv += ["--node", node]
        for digest in digests:
            argv += ["--digest", digest]
        import contextlib
        import io

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            assert cli.main(argv) == 0
        payload = json.loads(buffer.getvalue())
        shard_map = ShardMap(NODES)
        assert payload["nodes"] == list(shard_map.nodes)
        assert payload["vnodes"] == DEFAULT_VNODES
        assert payload["assignments"] == {
            digest: shard_map.assign(digest) for digest in digests
        }

    def test_assign_many_groups_in_order(self):
        digests = _digests(40)
        shard_map = ShardMap(NODES)
        groups = shard_map.assign_many(digests)
        assert sorted(d for group in groups.values() for d in group) == sorted(digests)
        for node, group in groups.items():
            # Each group preserves input order and homes where assign says.
            assert group == [d for d in digests if shard_map.assign(d) == node]


class TestStability:
    def test_leave_moves_only_the_departed_nodes_keys(self):
        digests = _digests(500)
        before = ShardMap(NODES)
        departed = NODES[1]
        after = before.without(departed)
        for digest in digests:
            home = before.assign(digest)
            new_home = after.assign(digest)
            if home == departed:
                assert new_home != departed
            else:
                assert new_home == home, "a surviving node's key moved"

    def test_leave_moves_keys_to_ring_successors(self):
        """Orphaned keys land on their pre-departure ring successor."""
        digests = _digests(500)
        before = ShardMap(NODES)
        departed = NODES[2]
        after = before.without(departed)
        for digest in digests:
            if before.assign(digest) != departed:
                continue
            succession = [n for n in before.succession(digest) if n != departed]
            assert after.assign(digest) == succession[0]

    def test_join_moves_keys_only_to_the_new_node(self):
        digests = _digests(1000)
        before = ShardMap(NODES)
        joined = "10.0.0.9:7737"
        after = before.with_node(joined)
        moved = 0
        for digest in digests:
            home = before.assign(digest)
            new_home = after.assign(digest)
            if new_home != home:
                assert new_home == joined, "a key moved between existing nodes"
                moved += 1
        # ~1/(N+1) of the keyspace: allow generous sampling slack.
        expected = len(digests) / (len(NODES) + 1)
        assert expected * 0.4 < moved < expected * 1.9

    def test_balance_with_default_vnodes(self):
        digests = _digests(4000)
        counts = {
            node: len(group)
            for node, group in ShardMap(NODES).assign_many(digests).items()
        }
        assert set(counts) == set(NODES), "a node owns no keyspace at all"
        fair = len(digests) / len(NODES)
        for node, count in counts.items():
            assert fair * 0.45 < count < fair * 1.8, (node, count)


class TestSuccession:
    def test_succession_starts_at_home_and_covers_every_node(self):
        shard_map = ShardMap(NODES)
        for digest in _digests(50):
            order = list(shard_map.succession(digest))
            assert order[0] == shard_map.assign(digest)
            assert sorted(order) == sorted(NODES)

    def test_succession_is_deterministic(self):
        digests = _digests(20)
        first = ShardMap(NODES)
        second = ShardMap(NODES)
        for digest in digests:
            assert list(first.succession(digest)) == list(second.succession(digest))

    def test_single_node_ring(self):
        shard_map = ShardMap(["solo:1"])
        digest = _digests(1)[0]
        assert shard_map.assign(digest) == "solo:1"
        assert list(shard_map.succession(digest)) == ["solo:1"]


class TestValidation:
    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError):
            ShardMap([])
        with pytest.raises(ValueError):
            ShardMap(["a:1", "a:1"])
        with pytest.raises(ValueError):
            ShardMap(["a:1"], vnodes=0)

    def test_without_unknown_node(self):
        with pytest.raises(ValueError):
            ShardMap(["a:1"]).without("b:2")

    def test_node_address_parsing(self):
        address = NodeAddress.parse("127.0.0.1:7737")
        assert (address.host, address.port) == ("127.0.0.1", 7737)
        assert address.label == "127.0.0.1:7737"
        for bad in ("7737", "host:", ":7737", "host:port"):
            with pytest.raises(ValueError):
                NodeAddress.parse(bad)

    def test_fabric_config_validation(self):
        with pytest.raises(ReproError):
            FabricConfig(nodes=())
        with pytest.raises(ReproError):
            FabricConfig(nodes=("a:1", "a:1"))
        with pytest.raises(ReproError):
            FabricConfig(nodes=("not-an-address",))
        with pytest.raises(ReproError):
            FabricConfig(nodes=("a:1",), vnodes=0)
        with pytest.raises(ReproError):
            FabricConfig(nodes=("a:1",), hedge_ms=-5)
        with pytest.raises(ReproError):
            FabricConfig(nodes=("a:1",), timeout_s=0)
        config = FabricConfig(nodes=("a:1", "b:2"), hedge_ms=None)
        assert config.as_dict()["nodes"] == ["a:1", "b:2"]

    def test_cli_defaults_match_package_constants(self):
        """The argparse defaults must not drift from the fabric package."""
        assert cli._DEFAULT_FABRIC_PORT == DEFAULT_FABRIC_PORT
        assert cli._DEFAULT_VNODES == DEFAULT_VNODES
