"""Lifecycle tests for the daemon as an actual subprocess.

``tests/test_service.py`` drives an in-process ``SimulationServer``;
here the real ``python -m repro serve`` process is booted on an
ephemeral port and exercised the way an operator would: parse the
listening line, query it with the client and the ``repro submit`` CLI,
then SIGTERM it and insist on a clean drain and exit code 0.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.service import ServiceClient

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

_LISTENING = re.compile(r"listening on ([\d.]+):(\d+)")


def _spawn_daemon(tmp_path, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.setdefault("PYTHONUNBUFFERED", "1")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "1",
            "--warm-apps",
            "fft",
            "--cache-dir",
            str(tmp_path / "cache"),
            *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    line = process.stdout.readline()
    match = _LISTENING.search(line)
    if not match:
        process.kill()
        rest = process.stdout.read()
        raise AssertionError(f"no listening line; daemon said: {line!r} {rest!r}")
    return process, match.group(1), int(match.group(2))


@pytest.fixture
def daemon(tmp_path):
    process, host, port = _spawn_daemon(tmp_path)
    try:
        yield process, host, port
    finally:
        if process.poll() is None:
            process.kill()
        process.stdout.close()
        process.wait(timeout=10)


def test_boot_serve_submit_sigterm_drain(daemon):
    process, host, port = daemon

    with ServiceClient(host, port) as client:
        assert client.healthz()["status"] == "serving"
        first = client.submit("fft", "medium", fault_seed=7)
        assert first.cached is False
        second = client.submit("fft", "medium", fault_seed=7)
        assert second.cached is True
        assert second.qos == first.qos

    # The submit CLI against the same daemon (JSON mode): answered from
    # the store the daemon just warmed.
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "submit",
            "fft",
            "--level",
            "medium",
            "--seed",
            "7",
            "--host",
            host,
            "--port",
            str(port),
            "--json",
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    payload = json.loads(completed.stdout)
    assert payload[0]["cached"] is True
    assert payload[0]["qos"] == first.qos

    # SIGTERM: drain then exit 0, telling the operator what happened.
    process.send_signal(signal.SIGTERM)
    assert process.wait(timeout=60) == 0
    transcript = process.stdout.read()
    assert "draining" in transcript
    assert "drained cleanly" in transcript


def test_sigterm_mid_flight_still_drains(daemon):
    process, host, port = daemon

    # Leave a request in flight, then immediately ask for shutdown: the
    # daemon must finish the work it admitted before exiting 0.
    import threading

    answers = []

    def ask():
        with ServiceClient(host, port) as client:
            answers.append(client.submit("fft", "medium", fault_seed=11))

    thread = threading.Thread(target=ask)
    thread.start()
    time.sleep(0.15)  # let the request reach the admission queue
    process.send_signal(signal.SIGTERM)
    thread.join(timeout=60)
    assert process.wait(timeout=60) == 0
    assert answers and answers[0].cached is False
    assert "drained cleanly" in process.stdout.read()
