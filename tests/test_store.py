"""Tests for the persistent run store.

Pins the tentpole guarantees: bit-identical round trips (codec and
whole entries), invalidation on source/config digest change, crash-safe
corruption handling, harness write-through and cache-hit behaviour,
``clear_caches()`` closing the active store, gc/verify/stats
maintenance, and the ``repro cache`` CLI surface.
"""

import dataclasses
import json
import math
import os

import pytest

from repro import store as store_mod
from repro.apps import app_by_name
from repro.cli import main
from repro.experiments import RunKey, harness
from repro.hardware.config import MEDIUM, MILD
from repro.runtime.stats import RunStats
from repro.store import RunStore, StoreError, codec

MC = dataclasses.replace(
    app_by_name("montecarlo"), name="MC@store-test", default_args=(400, 0)
)


@pytest.fixture
def store(tmp_path):
    with RunStore(str(tmp_path / "cache")) as run_store:
        yield run_store


@pytest.fixture
def active(store):
    previous = store_mod.set_active_store(store)
    yield store
    store_mod.set_active_store(previous)


def _key(config=MEDIUM, fault_seed=1, workload_seed=0, spec=MC):
    return RunKey(
        spec=spec, config=config, fault_seed=fault_seed, workload_seed=workload_seed
    )


STATS = RunStats(int_ops_approx=3, fp_ops_precise=7, ticks=42, endorsements=1)


class TestCodec:
    CASES = [
        None,
        True,
        False,
        0,
        -17,
        10**40,
        "text",
        1.5,
        -0.0,
        float("inf"),
        [1, 2, 3],
        (1, 2, 3),
        {"a": 1, 2: "b"},
        {"L": "tag-collision-as-key-value"},
        b"\x00\xff\x7f",
        complex(1.5, -2.5),
        [(1, [2.5, (None,)]), {"deep": {"deeper": (b"x",)}}],
    ]

    @pytest.mark.parametrize("value", CASES, ids=[repr(c)[:40] for c in CASES])
    def test_round_trip_value_and_type(self, value):
        restored = codec.loads(codec.dumps(value))
        assert restored == value
        assert type(restored) is type(value)

    def test_tuple_stays_tuple_inside_list(self):
        restored = codec.loads(codec.dumps([("a", 1)]))
        assert isinstance(restored[0], tuple)

    def test_int_and_float_stay_distinct(self):
        restored = codec.loads(codec.dumps([1, 1.0]))
        assert type(restored[0]) is int
        assert type(restored[1]) is float

    def test_nan_round_trips(self):
        restored = codec.loads(codec.dumps(float("nan")))
        assert math.isnan(restored)

    def test_float_bit_identity(self):
        values = [0.1 + 0.2, 1e-323, -0.0, 2**53 + 1.0]
        restored = codec.loads(codec.dumps(values))
        assert [v.hex() for v in restored] == [v.hex() for v in values]

    def test_unsupported_value_raises(self):
        with pytest.raises(codec.UnsupportedValue):
            codec.dumps({"bad": object()})

    def test_malformed_tagged_value_rejected(self):
        with pytest.raises(ValueError):
            codec.decode({"X": []})
        with pytest.raises(ValueError):
            codec.decode({"L": [], "T": []})


class TestRoundTrip:
    def test_entry_round_trip_is_bit_identical(self, store):
        key = _key()
        output = [(1, 2.5), {"pixels": (255, 0, 128)}, float("nan"), -0.0]
        store.put(key, output, STATS)
        store.clear_memo()  # force the disk path, not the memo
        entry = store.get(key)
        assert entry is not None
        assert entry.stats == STATS
        assert isinstance(entry.output[0], tuple)
        assert math.isnan(entry.output[2])
        assert entry.output[3].hex() == (-0.0).hex()
        assert entry.output[:2] == output[:2]

    def test_real_run_round_trip(self, store):
        key = _key(config=MILD, fault_seed=2)
        fresh = harness.run_key(key)
        store.put(key, fresh.output, fresh.stats)
        store.clear_memo()
        entry = store.get(key)
        assert entry.output == fresh.output
        assert entry.stats == fresh.stats

    def test_miss_returns_none(self, store):
        assert store.get(_key(fault_seed=999)) is None
        assert not store.contains(_key(fault_seed=999))

    def test_uncacheable_output_is_skipped_not_fatal(self, store):
        digest = store.put(_key(), object(), STATS)
        assert digest is None
        assert store.get(_key()) is None

    def test_put_preserves_existing_trace_summary(self, store):
        key = _key()
        store.put(key, [1], STATS, trace_summary={"events": 5})
        store.put(key, [1], STATS)  # plain re-put must not drop it
        store.clear_memo()
        assert store.get(key).trace_summary == {"events": 5}


class TestInvalidation:
    def test_config_change_misses(self, store):
        store.put(_key(config=MEDIUM), [1], STATS)
        assert store.get(_key(config=MILD)) is None

    def test_source_change_misses(self, store, tmp_path):
        source = tmp_path / "app.py"
        source.write_text("def main(n, seed):\n    return n + seed\n")
        spec = dataclasses.replace(
            MC,
            name="Tiny@invalidation",
            module_files={"tiny": str(source)},
            entry_module="tiny",
            entry_function="main",
            default_args=(3, 0),
        )
        store.put(_key(spec=spec), [1], STATS)
        assert store.get(_key(spec=spec)) is not None
        source.write_text("def main(n, seed):\n    return n - seed\n")
        edited = dataclasses.replace(spec, name="Tiny@invalidation-edited")
        assert store.get(_key(spec=edited)) is None

    def test_corrupt_entry_is_a_miss(self, store):
        key = _key()
        store.put(key, [1, 2], STATS)
        store.clear_memo()
        path = store._entry_path(key.digest)
        with open(path, "w") as handle:
            handle.write("{ not json")
        assert store.get(key) is None

    def test_tampered_payload_fails_checksum(self, store):
        key = _key()
        store.put(key, [1, 2], STATS)
        store.clear_memo()
        path = store._entry_path(key.digest)
        payload = json.load(open(path))
        payload["output"] = {"L": [9, 9]}  # bit-rot / manual edit
        with open(path, "w") as handle:
            json.dump(payload, handle)
        assert store.get(key) is None
        problems = store.verify()
        assert len(problems) == 1 and "checksum" in problems[0]


class TestHarnessIntegration:
    def test_write_through_and_hit(self, active):
        key = _key(fault_seed=3)
        first = harness.run_key(key)
        assert active.contains(key)
        second = harness.run_key(key)
        assert second.output == first.output
        assert second.stats == first.stats

    def test_hit_equals_fresh_run_without_store(self, active):
        key = _key(fault_seed=4)
        cached = harness.run_key(key)
        cached_again = harness.run_key(key)
        store_mod.set_active_store(None)
        try:
            fresh = harness.run_key(key)
        finally:
            store_mod.set_active_store(active)
        assert cached_again.output == cached.output == fresh.output
        assert cached_again.stats == cached.stats == fresh.stats

    def test_args_override_bypasses_store(self, active):
        key = _key(fault_seed=5)
        harness.run_key(key, args=(100, 0))
        assert not active.contains(key)

    def test_tracer_bypasses_plain_lookup(self, active):
        # traced_run writes through (with a summary) via the runner,
        # but run_key itself must not serve a traced request from cache.
        from repro.observability.sink import MemorySink
        from repro.observability.tracer import Tracer

        key = _key(config=MEDIUM, fault_seed=6)
        plain = harness.run_key(key)
        traced = harness.run_key(key, tracer=Tracer(MemorySink()))
        assert traced.output == plain.output
        assert traced.stats == plain.stats

    def test_qos_error_identical_with_and_without_store(self, active):
        key = _key(config=MEDIUM, fault_seed=7)
        with_store = harness.qos_error(key)
        warm = harness.qos_error(key)
        store_mod.set_active_store(None)
        harness._PRECISE_CACHE.clear()
        try:
            without = harness.qos_error(key)
        finally:
            store_mod.set_active_store(active)
        assert with_store == warm == without

    def test_traced_run_stores_summary(self, active):
        from repro.observability.runner import traced_run

        key = _key(config=MEDIUM, fault_seed=8)
        result = traced_run(key)
        active.clear_memo()
        entry = active.get(key)
        assert entry is not None
        assert entry.output == result.output
        assert entry.trace_summary is not None
        assert entry.trace_summary["events"] == len(result.events)
        assert entry.trace_summary["dropped"] == result.dropped

    def test_clear_caches_closes_active_store(self, store):
        previous = store_mod.set_active_store(store)
        try:
            harness.clear_caches()
            assert store_mod.active_store() is None
            with pytest.raises(StoreError, match="closed"):
                store.get(_key())
        finally:
            store_mod.set_active_store(previous)


class TestExecutorResume:
    def test_parallel_grid_served_from_store(self, active):
        from repro.experiments.executor import Job, run_jobs

        jobs = [
            Job(spec=MC, config=config, fault_seed=seed)
            for config in (MILD, MEDIUM)
            for seed in (1, 2)
        ]
        serial = run_jobs(jobs)  # fills the store via the harness
        for job in jobs:
            assert active.contains(job.key)
        # All cells cached -> the "parallel" call must resolve without
        # ever building a pool (workers=64 would otherwise be absurd).
        warm = run_jobs(jobs, workers=64)
        assert warm == serial

    def test_partial_store_mixes_cached_and_fresh(self, active):
        from repro.experiments.executor import Job, run_jobs

        jobs = [Job(spec=MC, config=MEDIUM, fault_seed=seed) for seed in (1, 2, 3)]
        run_jobs([jobs[0]])  # cache exactly one cell
        mixed = run_jobs(jobs, workers=2)
        store_mod.set_active_store(None)
        harness._PRECISE_CACHE.clear()
        try:
            fresh = run_jobs(jobs)
        finally:
            store_mod.set_active_store(active)
        assert mixed == fresh


class TestMaintenance:
    def _populate(self, store, seeds=(1, 2, 3)):
        for seed in seeds:
            key = _key(fault_seed=seed)
            store.put(key, [seed, (seed, 2.5)], STATS)

    def test_stats_counts_entries(self, store):
        self._populate(store)
        stats = store.stats()
        assert stats.entries == 3
        assert stats.per_app == {MC.name: 3}
        assert stats.total_bytes > 0
        assert stats.store_schema == store_mod.STORE_SCHEMA_VERSION

    def test_verify_clean_store(self, store):
        self._populate(store)
        assert store.verify() == []

    def test_verify_flags_misnamed_entry(self, store):
        self._populate(store, seeds=(1,))
        key = _key(fault_seed=1)
        path = store._entry_path(key.digest)
        bogus = os.path.join(os.path.dirname(path), "ab" * 32 + ".json")
        os.rename(path, bogus)
        problems = store.verify()
        assert len(problems) == 1 and "does not match" in problems[0]

    def test_gc_keeps_unknown_apps_removes_stale(self, store):
        self._populate(store, seeds=(1, 2))
        # An entry whose app IS known to the registry but whose source
        # digest is outdated must be collected.
        real = app_by_name("montecarlo")
        stale_key = _key(spec=real, fault_seed=9)
        store.put(stale_key, [1], STATS)
        result = store.gc(
            current_digests={real.name: "0" * 64}  # pretend sources moved on
        )
        assert result.removed == 1
        assert result.kept == 2
        assert result.reclaimed_bytes > 0
        store.clear_memo()
        assert store.get(stale_key) is None
        assert store.get(_key(fault_seed=1)) is not None

    def test_gc_all_wipes_everything(self, store):
        self._populate(store)
        result = store.gc(all_entries=True)
        assert result.removed == 3
        assert store.stats().entries == 0

    def test_gc_against_live_registry_keeps_current_entries(self, store):
        real = app_by_name("montecarlo")
        key = _key(spec=real, fault_seed=1)
        store.put(key, [1], STATS)
        result = store.gc()  # current digests: nothing is stale
        assert result.removed == 0
        assert store.get(key) is not None

    def test_open_missing_store_without_create(self, tmp_path):
        with pytest.raises(StoreError, match="no run store"):
            RunStore(str(tmp_path / "nowhere"), create=False)

    def test_schema_mismatch_rejected(self, tmp_path):
        root = tmp_path / "cache"
        RunStore(str(root)).close()
        manifest = root / "manifest.json"
        manifest.write_text(json.dumps({"store_schema": 999}))
        with pytest.raises(StoreError, match="schema"):
            RunStore(str(root))


class TestCacheCLI:
    @pytest.fixture
    def populated(self, tmp_path):
        root = str(tmp_path / "cache")
        with RunStore(root) as store:
            for seed in (1, 2):
                store.put(_key(fault_seed=seed), [seed], STATS)
        return root

    def test_stats(self, populated, capsys):
        assert main(["cache", "stats", "--cache-dir", populated]) == 0
        out = capsys.readouterr().out
        assert "entries   : 2" in out
        assert MC.name in out

    def test_verify_clean(self, populated, capsys):
        assert main(["cache", "verify", "--cache-dir", populated]) == 0
        assert "OK: 2" in capsys.readouterr().out

    def test_verify_corrupt_fails(self, populated, capsys):
        store = RunStore(populated)
        path = store._entry_path(_key(fault_seed=1).digest)
        with open(path, "w") as handle:
            handle.write("garbage")
        assert main(["cache", "verify", "--cache-dir", populated]) == 1
        out = capsys.readouterr().out
        assert "BAD" in out and "FAILED" in out

    def test_gc_all(self, populated, capsys):
        assert main(["cache", "gc", "--cache-dir", populated, "--all"]) == 0
        assert "removed 2" in capsys.readouterr().out
        assert RunStore(populated).stats().entries == 0

    def test_gc_default_keeps_test_entries(self, populated, capsys):
        # Apps unknown to the registry (test-local specs) are kept.
        assert main(["cache", "gc", "--cache-dir", populated]) == 0
        assert "removed 0, kept 2" in capsys.readouterr().out

    def test_missing_store_errors(self, tmp_path, capsys):
        missing = str(tmp_path / "nope")
        assert main(["cache", "stats", "--cache-dir", missing]) == 1
        assert "error" in capsys.readouterr().err

    def test_experiments_resume_requires_existing_store(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["experiments", "table2", "--resume"]) == 1
        assert "nothing to resume" in capsys.readouterr().err

    def test_experiments_resume_conflicts_with_no_cache(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["experiments", "table2", "--resume", "--no-cache"]) == 1
        assert "contradictory" in capsys.readouterr().err

    def test_experiments_creates_store_by_default(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["experiments", "table2"]) == 0
        assert (tmp_path / ".repro-cache" / "manifest.json").is_file()
        # ... and a subsequent --resume is now satisfied.
        assert main(["experiments", "table2", "--resume"]) == 0

    def test_experiments_no_cache_leaves_no_store(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["experiments", "table2", "--no-cache"]) == 0
        assert not (tmp_path / ".repro-cache").exists()
