"""Golden-baseline tests for `repro lint` / `repro analyze` output.

The committed files under tests/baselines/lint/ (and reliability.json)
are the analysis lane's contract: any change to the flow graph, the
lint catalog, the inference closure rules, or the hardware rates shows
up here as a reviewable diff.  Regenerate with::

    repro lint --baseline-dir tests/baselines/lint --write-baselines
    repro analyze reliability --format json > tests/baselines/reliability.json
    repro analyze placement --baseline-dir tests/baselines/placement \
        --write-baselines
"""

import json
import os

import pytest

from repro.analysis import infer_relaxations, run_lints
from repro.analysis.flowgraph import build_flow_graph
from repro.analysis.report import PAYLOAD_VERSION, canonical_json, lint_payload
from repro.apps import ALL_APPS, load_sources
from repro.cli import main
from repro.core.checker import check_modules

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines", "lint")
RELIABILITY_BASELINE = os.path.join(
    os.path.dirname(__file__), "baselines", "reliability.json"
)
PLACEMENT_BASELINE_DIR = os.path.join(
    os.path.dirname(__file__), "baselines", "placement"
)


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


class TestLintBaselines:
    @pytest.mark.parametrize("spec", ALL_APPS, ids=lambda s: s.name)
    def test_app_matches_committed_baseline(self, spec):
        sources = load_sources(spec)
        result = check_modules(sources)
        assert result.ok
        graph = build_flow_graph(result)
        findings = run_lints(graph=graph)
        suggestions = infer_relaxations(sources, result=result, graph=graph)
        current = canonical_json(lint_payload(spec.name, findings, suggestions))
        path = os.path.join(BASELINE_DIR, f"{spec.name.lower()}.json")
        assert current == _read(path), (
            f"{spec.name}: lint output drifted from {path}; regenerate "
            "with 'repro lint --baseline-dir tests/baselines/lint "
            "--write-baselines' and review the diff"
        )

    def test_baselines_cover_exactly_the_bundled_apps(self):
        committed = {
            name[: -len(".json")]
            for name in os.listdir(BASELINE_DIR)
            if name.endswith(".json")
        }
        assert committed == {spec.name.lower() for spec in ALL_APPS}

    def test_baselines_are_canonical_and_versioned(self):
        for name in sorted(os.listdir(BASELINE_DIR)):
            if not name.endswith(".json"):
                continue
            raw = _read(os.path.join(BASELINE_DIR, name))
            payload = json.loads(raw)
            assert payload["version"] == PAYLOAD_VERSION
            assert canonical_json(payload) == raw  # canonical round-trip


class TestReliabilityBaseline:
    def test_all_apps_match_committed_bounds(self, capsys):
        assert main(["analyze", "reliability", "--format", "json"]) == 0
        current = capsys.readouterr().out
        assert current == _read(RELIABILITY_BASELINE), (
            f"reliability bounds drifted from {RELIABILITY_BASELINE}; "
            "regenerate with 'repro analyze reliability --format json' "
            "and review the diff"
        )


class TestPlacementBaselines:
    @pytest.mark.parametrize("spec", ALL_APPS, ids=lambda s: s.name)
    def test_app_matches_committed_baseline(self, spec, capsys):
        assert main(
            [
                "analyze",
                "placement",
                spec.name.lower(),
                "--baseline-dir",
                PLACEMENT_BASELINE_DIR,
            ]
        ) == 0, (
            f"{spec.name}: placement plans drifted; regenerate with "
            "'repro analyze placement --baseline-dir "
            "tests/baselines/placement --write-baselines' and review the diff"
        )
        assert "ok" in capsys.readouterr().out

    def test_baselines_cover_exactly_the_bundled_apps(self):
        committed = {
            name[: -len(".json")]
            for name in os.listdir(PLACEMENT_BASELINE_DIR)
            if name.endswith(".json")
        }
        assert committed == {spec.name.lower() for spec in ALL_APPS}

    def test_baselines_are_canonical_versioned_plans_only(self):
        for name in sorted(os.listdir(PLACEMENT_BASELINE_DIR)):
            if not name.endswith(".json"):
                continue
            raw = _read(os.path.join(PLACEMENT_BASELINE_DIR, name))
            payload = json.loads(raw)
            assert payload["version"] == PAYLOAD_VERSION
            assert canonical_json(payload) == raw  # canonical round-trip
            # Plans for all three levels, no seed-dependent verification.
            assert [p["level"] for p in payload["plans"]] == [
                "mild",
                "medium",
                "aggressive",
            ]
            assert "verifications" not in payload


class TestJobsDeterminism:
    def test_lint_jobs_output_is_byte_identical(self, capsys):
        apps = ["fft", "montecarlo", "lu"]
        assert main(["lint", *apps, "--format", "json"]) == 0
        serial = capsys.readouterr().out
        assert main(["lint", *apps, "--format", "json", "--jobs", "3"]) == 0
        fanned = capsys.readouterr().out
        assert serial == fanned

    def test_analyze_jobs_output_is_byte_identical(self, capsys):
        apps = ["sor", "sparsematmult"]
        assert main(["analyze", "reliability", *apps, "--format", "json"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(["analyze", "reliability", *apps, "--format", "json", "--jobs", "2"])
            == 0
        )
        fanned = capsys.readouterr().out
        assert serial == fanned

    def test_placement_jobs_output_is_byte_identical(self, capsys):
        apps = ["fft", "sor"]
        assert main(["analyze", "placement", *apps, "--format", "json"]) == 0
        serial = capsys.readouterr().out
        assert (
            main(["analyze", "placement", *apps, "--format", "json", "--jobs", "2"])
            == 0
        )
        fanned = capsys.readouterr().out
        assert serial == fanned
