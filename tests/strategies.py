"""Hypothesis strategies for the batch differential tests.

The batch fault-injection engine's contract is lane-wise bit-identity
with :class:`~repro.hardware.rng.FaultRandom`: lane ``i`` of
``BatchFaultRandom(seeds)`` must produce exactly the draw stream of
``FaultRandom(seeds[i])``, whatever interleaving of primitives a fault
model issues.  These strategies generate that input space — seed
vectors, probabilities (including the NaN/infinity edge cases of the
coin contract), and random *draw programs*: sequences of primitive
calls, some restricted to lane subsets, that the differential test
replays against both the batch engine and a per-lane serial oracle.

Lane subsets are always ascending: that is the only shape the fault
models produce (``coin_fired`` returns lane indices in ascending order,
and subsequent subset draws reuse those tuples verbatim).
"""

from hypothesis import strategies as st

__all__ = [
    "seeds",
    "seed_vectors",
    "probabilities",
    "edge_probabilities",
    "draw_programs",
]

#: Any seed CPython's MT19937 accepts cheaply.
seeds = st.integers(min_value=0, max_value=2**32 - 1)

#: A batch of at least two lanes (one lane routes through the serial path).
seed_vectors = st.lists(seeds, min_size=2, max_size=6)

#: The coin-contract edge cases, always worth mixing into a program.
edge_probabilities = st.sampled_from(
    [0.0, 1.0, -1.0, 2.0, float("nan"), float("inf"), float("-inf")]
)

probabilities = st.one_of(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    edge_probabilities,
)

_widths = st.integers(min_value=1, max_value=64)


def _lane_subsets(lane_count):
    """Ascending, duplicate-free lane subsets (or None = all lanes)."""
    return st.one_of(
        st.none(),
        st.lists(
            st.integers(min_value=0, max_value=lane_count - 1),
            min_size=1,
            max_size=lane_count,
            unique=True,
        ).map(lambda chosen: tuple(sorted(chosen))),
    )


@st.composite
def draw_programs(draw, lane_count, max_ops=12):
    """A random sequence of draw-primitive calls for ``lane_count`` lanes.

    Each op is a tuple ``(name, lanes, *args)`` where ``lanes`` is
    ``None`` (all lanes) or an ascending tuple of lane indices.
    """
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_ops))):
        lanes = draw(_lane_subsets(lane_count))
        kind = draw(
            st.sampled_from(["coin", "coin_fired", "bit_index", "bits", "uniform", "binomial"])
        )
        if kind in ("coin", "coin_fired"):
            ops.append((kind, lanes, draw(probabilities)))
        elif kind == "bit_index":
            ops.append((kind, lanes, draw(st.integers(min_value=1, max_value=64))))
        elif kind == "bits":
            ops.append((kind, lanes, draw(_widths)))
        elif kind == "uniform":
            low = draw(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False))
            span = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
            ops.append((kind, lanes, low, low + span))
        else:
            trials = draw(st.integers(min_value=0, max_value=8))
            ops.append((kind, lanes, trials, draw(probabilities)))
    return ops
