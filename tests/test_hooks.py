"""Tests for the runtime hook layer the instrumenter targets."""

import pytest

from repro.errors import NoActiveSimulationError
from repro.hardware import AGGRESSIVE, BASELINE
from repro.runtime import Simulator, hooks


class TestHookDispatch:
    def test_all_hook_names_exist(self):
        for name in hooks.HOOK_NAMES:
            assert callable(getattr(hooks, name)), name

    def test_binop_inside_simulator(self):
        with Simulator(BASELINE) as sim:
            assert hooks._ej_binop("mul", "int", False, 6, 7) == 42
        assert sim.stats().int_ops_precise == 1

    def test_local_hooks(self):
        with Simulator(BASELINE) as sim:
            assert hooks._ej_local_read(1.5, "float", True) == 1.5
            assert hooks._ej_local_write(2, "int", False) == 2
        stats = sim.stats()
        assert stats.sram_approx_byte_ticks == 4
        assert stats.sram_precise_byte_ticks == 4

    def test_array_hooks(self):
        with Simulator(BASELINE) as sim:
            arr = hooks._ej_new_array([0.0] * 32, "float", True)
            hooks._ej_array_store(arr, 2, 9.0)
            assert hooks._ej_array_load(arr, 2) == 9.0
        assert sim.stats().allocations == 1

    def test_iter_array_loads_each_element(self):
        with Simulator(BASELINE) as sim:
            arr = hooks._ej_new_array([1.0, 2.0, 3.0], "float", True)
            assert list(hooks._ej_iter_array(arr)) == [1.0, 2.0, 3.0]
        assert sim.dram.approx_reads + sim.dram.precise_reads >= 0

    def test_range_counts_precise_int_ops(self):
        with Simulator(BASELINE) as sim:
            assert list(hooks._ej_range(5)) == [0, 1, 2, 3, 4]
        assert sim.stats().int_ops_precise == 5

    def test_range_with_start_stop_step(self):
        with Simulator(BASELINE):
            assert list(hooks._ej_range(1, 10, 3)) == [1, 4, 7]

    def test_endorse_counts(self):
        with Simulator(BASELINE) as sim:
            assert hooks._ej_endorse(7) == 7
        assert sim.stats().endorsements == 1

    def test_math_hook(self):
        with Simulator(BASELINE) as sim:
            assert hooks._ej_math("sqrt", False, 9.0) == 3.0
            assert hooks._ej_math("atan2", True, 0.0, 1.0) == 0.0
        assert sim.stats().fp_ops_total == 2

    def test_convert_hook(self):
        with Simulator(BASELINE):
            assert hooks._ej_convert("int", False, 3.7) == 3
            assert hooks._ej_convert("float", True, 2) == 2.0


class TestObjectHooks:
    class Pair:
        def __init__(self, x):
            self.x = x

        def m(self):
            return "precise"

        def m_APPROX(self):
            return "approx"

    SPECS = [("x", "float", True)]

    def test_new_object_constructs_and_registers(self):
        with Simulator(BASELINE) as sim:
            pair = hooks._ej_new_object(self.Pair, True, self.SPECS, 1.5)
            assert pair.x == 1.5
            assert hooks._ej_receiver_is_approx(pair)

    def test_invoke_dispatches_on_dynamic_precision(self):
        with Simulator(BASELINE):
            approx_pair = hooks._ej_new_object(self.Pair, True, self.SPECS, 0.0)
            precise_pair = hooks._ej_new_object(self.Pair, False, self.SPECS, 0.0)
            assert hooks._ej_invoke(approx_pair, "m") == "approx"
            assert hooks._ej_invoke(precise_pair, "m") == "precise"

    def test_invoke_without_variant_falls_back(self):
        class NoVariant:
            def only(self):
                return 1

        with Simulator(BASELINE):
            obj = hooks._ej_new_object(NoVariant, True, [])
            assert hooks._ej_invoke(obj, "only") == 1

    def test_field_hooks(self):
        with Simulator(BASELINE):
            pair = hooks._ej_new_object(self.Pair, True, self.SPECS, 0.0)
            hooks._ej_field_store(pair, "x", 4.5)
            assert hooks._ej_field_load(pair, "x") == 4.5


class TestFallbackBehaviour:
    def test_hooks_raise_without_simulator_by_default(self):
        for call in (
            lambda: hooks._ej_binop("add", "int", False, 1, 2),
            lambda: hooks._ej_local_read(1, "int", False),
            lambda: hooks._ej_endorse(1),
            lambda: list(hooks._ej_range(2)),
        ):
            with pytest.raises(NoActiveSimulationError):
                call()

    def test_fallback_mode_behaves_like_plain_python(self):
        hooks.set_fallback_precise(True)
        try:
            assert hooks._ej_binop("div", "int", False, 7, 2) == 3
            assert hooks._ej_binop("div", "float", False, 7.0, 2.0) == 3.5
            assert hooks._ej_unop("neg", "int", False, 5) == -5
            assert hooks._ej_convert("int", False, 2.9) == 2
            assert hooks._ej_math("sqrt", False, 16.0) == 4.0
            obj = hooks._ej_new_object(TestObjectHooks.Pair, True, [], 1.0)
            assert obj.x == 1.0
            assert not hooks._ej_receiver_is_approx(obj)
        finally:
            hooks.set_fallback_precise(False)
