"""Tests for the SRAM and DRAM storage fault models."""

import dataclasses

from repro.hardware.clock import LogicalClock
from repro.hardware.config import AGGRESSIVE, BASELINE, MEDIUM
from repro.hardware.dram import ApproxDRAM
from repro.hardware.rng import FaultRandom
from repro.hardware.sram import ApproxSRAM


def make_sram(config=BASELINE, seed=0):
    return ApproxSRAM(config, FaultRandom(seed))


def make_dram(config=BASELINE, seed=0, seconds_per_tick=1e-6):
    clock = LogicalClock(seconds_per_tick)
    return ApproxDRAM(config, FaultRandom(seed), clock), clock


class TestSRAM:
    def test_precise_access_never_corrupts(self):
        sram = make_sram(AGGRESSIVE)
        for i in range(1000):
            assert sram.read(i, "int", approximate=False) == i
            assert sram.write(i, "int", approximate=False) == i
        assert sram.read_upsets == 0
        assert sram.write_failures == 0

    def test_baseline_approx_access_never_corrupts(self):
        sram = make_sram(BASELINE)
        for i in range(1000):
            assert sram.read(i, "int", approximate=True) == i
        assert sram.read_upsets == 0

    def test_aggressive_read_upsets_occur(self):
        sram = make_sram(AGGRESSIVE, seed=3)
        corrupted = sum(
            1 for i in range(5000) if sram.read(i, "int", approximate=True) != i
        )
        # 32 bits/read at p=1e-3: ~3% of reads corrupted.
        assert corrupted > 20
        assert sram.read_upsets >= corrupted

    def test_medium_write_failures_rarer_than_aggressive(self):
        def failures(config, seed):
            sram = make_sram(config, seed)
            for i in range(20_000):
                sram.write(i, "int", approximate=True)
            return sram.write_failures

        assert failures(MEDIUM, 1) < failures(AGGRESSIVE, 1)

    def test_byte_accounting(self):
        sram = make_sram()
        sram.read(1.0, "float", approximate=True)
        sram.write(1, "int", approximate=False)
        assert sram.approx_byte_accesses == 4
        assert sram.precise_byte_accesses == 4

    def test_counts_split_by_precision(self):
        sram = make_sram()
        sram.read(1, "int", True)
        sram.read(1, "int", False)
        sram.write(1, "int", True)
        assert sram.approx_reads == 1
        assert sram.precise_reads == 1
        assert sram.approx_writes == 1


class TestDRAM:
    def test_fresh_write_then_immediate_read_is_clean(self):
        dram, clock = make_dram(AGGRESSIVE)
        dram.write(("a", 0), 42, "int", approximate=True)
        assert dram.read(("a", 0), 42, "int", approximate=True) == 42

    def test_precise_data_never_decays(self):
        dram, clock = make_dram(AGGRESSIVE)
        dram.write(("a", 0), 42, "int", approximate=False)
        clock.advance(10**9)
        assert dram.read(("a", 0), 42, "int", approximate=False) == 42
        assert dram.decayed_bits == 0

    def test_long_idle_approx_data_decays(self):
        # 1e-3 per-bit/sec for 1000 simulated seconds: decay is certain.
        dram, clock = make_dram(AGGRESSIVE, seed=5, seconds_per_tick=1.0)
        dram.write(("a", 0), 0, "int", approximate=True)
        clock.advance(1000)
        corrupted = dram.read(("a", 0), 0, "int", approximate=True)
        assert corrupted != 0
        assert dram.decayed_bits > 0

    def test_read_refreshes_the_word(self):
        dram, clock = make_dram(AGGRESSIVE, seed=5, seconds_per_tick=1.0)
        dram.write(("a", 0), 7, "int", approximate=True)
        clock.advance(1)
        first = dram.read(("a", 0), 7, "int", approximate=True)
        # Immediately after a read the word is fresh again.
        second = dram.read(("a", 0), first, "int", approximate=True)
        assert second == first

    def test_decay_probability_grows_with_idle_time(self):
        dram, clock = make_dram(MEDIUM, seconds_per_tick=1.0)
        dram.write(("a", 0), 0, "int", approximate=True)
        clock.advance(1)
        short = dram._decay_probability(("a", 0))
        dram.write(("a", 1), 0, "int", approximate=True)
        clock.advance(10_000)
        long = dram._decay_probability(("a", 1))
        assert 0 < short < long <= 1.0

    def test_forget_drops_stamps(self):
        dram, clock = make_dram(MEDIUM)
        dram.write((123, 0), 1, "int", approximate=True)
        dram.write((123, 1), 2, "int", approximate=True)
        dram.write((456, 0), 3, "int", approximate=True)
        dram.forget(123)
        assert (123, 0) not in dram._refresh_stamp
        assert (456, 0) in dram._refresh_stamp

    def test_mild_rarely_decays(self):
        # 1e-9 per-bit/sec over one simulated second is negligible.
        from repro.hardware.config import MILD

        dram, clock = make_dram(MILD, seed=1, seconds_per_tick=1.0)
        for i in range(1000):
            dram.write(("a", i), i, "int", approximate=True)
        clock.advance(1)
        clean = sum(1 for i in range(1000) if dram.read(("a", i), i, "int", True) == i)
        assert clean == 1000


class TestLogicalClock:
    def test_advance_and_seconds(self):
        clock = LogicalClock(seconds_per_tick=0.5)
        clock.advance(4)
        assert clock.ticks == 4
        assert clock.seconds == 2.0

    def test_seconds_since(self):
        clock = LogicalClock(1e-3)
        clock.advance(1000)
        assert clock.seconds_since(0) == 1.0
        assert clock.seconds_since(2000) == 0  # never negative

    def test_rejects_backwards(self):
        clock = LogicalClock()
        import pytest

        with pytest.raises(ValueError):
            clock.advance(-1)
        with pytest.raises(ValueError):
            LogicalClock(0)
