"""Multi-node integration tests for the campaign fabric.

A real two-daemon fleet (in-process :class:`SimulationServer`s on real
sockets, each with its own run store) behind an in-process
:class:`FabricCoordinator`, pinning the tentpole guarantees:

* a **mixed hit/miss multi-node campaign answers bit-identical to the
  serial harness** (the acceptance bar), through both the raw
  ``batch`` op and harness routing (``--via-fleet``),
* a figure5 row computed through the fleet equals the serial row
  float for float,
* items shard across both nodes' stores (each node warms its shard),
* with the hedge deadline at zero, every entry ends up on its **home
  shard** no matter which node answered (store-entry replication),
* killing a node mid-campaign: the survivors answer the rest of the
  campaign, still bit-identical (consistent hashing moves only the
  dead node's keys),
* losing the whole fleet mid-campaign: a ``fallback_local`` route goes
  quiet and the harness finishes locally, still bit-identical,
* fleet-wide ``/metrics`` merge exactly one registry per node plus the
  coordinator's own ``fabric.*`` counters,
* ``store_pull``/``store_push`` round entries between nodes through
  the public client.

Fault-seed ranges are partitioned across tests (the module fleet's
stores persist across tests by design).
"""

import os

import pytest

from repro.apps import app_by_name
from repro.experiments import harness
from repro.experiments.runkey import RunKey
from repro.fabric import FabricConfig, FabricCoordinator, ShardMap
from repro.hardware import MEDIUM, MILD
from repro.service import ServiceClient, ServiceConfig, SimulationServer, routed
from repro.service.routing import clear_service_route

FFT = app_by_name("fft")

#: Seed partitions against the module-scoped fleet.
BATCH_SEEDS = range(1, 17)  # the mixed hit/miss acceptance batch
ROUTE_SEEDS = 4  # mean_qos via routed(); seeds 1..4 (warm by then)
FIGURE5_RUNS = 3  # figure5 row via fleet; seeds 1..3 per level
SEED_SUBMIT = 101
SEED_PULL_PUSH = 102


def _serial_qos(spec, config, fault_seed):
    """The ground truth: plain local harness execution (no store)."""
    return harness.qos_error(spec, config, fault_seed=fault_seed)


def _make_node(tmp_root, index):
    config = ServiceConfig(
        port=0,
        workers=1,
        warm_apps=("fft",),
        cache_dir=os.path.join(tmp_root, f"node{index}"),
        default_deadline_ms=120_000,
    )
    server = SimulationServer(config)
    server.start()
    return server


def _make_fleet(tmp_root, count=2, hedge_ms=None, **fabric_kwargs):
    servers = [_make_node(tmp_root, index) for index in range(count)]
    nodes = tuple("%s:%d" % server.address for server in servers)
    coordinator = FabricCoordinator(
        FabricConfig(
            nodes=nodes, host="127.0.0.1", port=0, hedge_ms=hedge_ms, **fabric_kwargs
        )
    )
    coordinator.start()
    return coordinator, servers


def _stop_fleet(coordinator, servers):
    coordinator.initiate_drain()
    coordinator.drain(timeout=10)
    coordinator.stop()
    for server in servers:
        server.initiate_drain()
        server.drain(timeout=10)
        server.stop()


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    tmp_root = str(tmp_path_factory.mktemp("fabric-fleet"))
    coordinator, servers = _make_fleet(tmp_root, count=2)
    yield coordinator, servers
    _stop_fleet(coordinator, servers)
    harness.clear_caches()


@pytest.fixture
def client(fleet):
    coordinator, _ = fleet
    host, port = coordinator.address
    with ServiceClient(host, port) as connection:
        yield connection


@pytest.fixture
def private_fleet(tmp_path):
    """A function-scoped fleet for destructive tests (node kills)."""
    created = []

    def factory(count=2, hedge_ms=None, **kwargs):
        coordinator, servers = _make_fleet(
            str(tmp_path), count=count, hedge_ms=hedge_ms, **kwargs
        )
        created.append((coordinator, servers))
        return coordinator, servers

    yield factory
    import contextlib

    for coordinator, servers in created:
        # Some tests stop their fleet mid-test; teardown must tolerate that.
        with contextlib.suppress(Exception):
            _stop_fleet(coordinator, servers)
    clear_service_route()
    harness.clear_caches()


class TestBitIdentity:
    def test_mixed_hit_miss_batch_matches_serial(self, fleet, client):
        """The acceptance bar: cold half, warm half, all bits equal."""
        warm = [s for s in BATCH_SEEDS if s % 2 == 0]
        client.submit_batch(
            [{"app": "fft", "config": "medium", "fault_seed": s} for s in warm]
        )
        results = client.submit_batch(
            [{"app": "fft", "config": "medium", "fault_seed": s} for s in BATCH_SEEDS]
        )
        cached = {r.fault_seed: r.cached for r in results}
        assert all(cached[s] for s in warm), "pre-warmed cells must hit"
        serial = [_serial_qos(FFT, MEDIUM, s) for s in BATCH_SEEDS]
        assert [r.qos for r in results] == serial

    def test_entries_shard_across_both_stores(self, fleet, client):
        """After the batch test, each node's store holds its shard."""
        coordinator, servers = fleet
        shard_map = ShardMap(list(coordinator.config.nodes))
        by_label = {"%s:%d" % server.address: server for server in servers}
        homed = {label: 0 for label in by_label}
        for seed in BATCH_SEEDS:
            key = RunKey(spec=FFT, config=MEDIUM, fault_seed=seed, workload_seed=0)
            homed[shard_map.assign(key.digest)] += 1
        assert all(count > 0 for count in homed.values()), (
            "seed range too small: one node owns the whole sample"
        )
        for label, server in by_label.items():
            entries = server._store.stats().entries
            assert entries > 0, f"{label} executed nothing"

    def test_routed_mean_qos_matches_serial(self, fleet, client):
        """--via-fleet semantics: harness routing through the coordinator."""
        serial = sum(_serial_qos(FFT, MEDIUM, s) for s in range(1, ROUTE_SEEDS + 1))
        serial /= ROUTE_SEEDS
        with routed(client, fallback_local=True):
            fleet_mean = harness.mean_qos(FFT, MEDIUM, runs=ROUTE_SEEDS)
        assert fleet_mean == serial

    def test_figure5_row_matches_serial(self, fleet, client):
        from repro.experiments.figure5 import figure5_row

        serial_row = figure5_row(FFT, runs=FIGURE5_RUNS)
        with routed(client, fallback_local=True):
            fleet_row = figure5_row(FFT, runs=FIGURE5_RUNS)
        assert fleet_row == serial_row

    def test_single_submit_matches_serial(self, fleet, client):
        result = client.submit("fft", "medium", fault_seed=SEED_SUBMIT)
        assert result.qos == _serial_qos(FFT, MEDIUM, SEED_SUBMIT)
        again = client.submit("fft", "medium", fault_seed=SEED_SUBMIT)
        assert again.cached and again.qos == result.qos


class TestReplication:
    def test_zero_hedge_replicates_to_home_shard(self, private_fleet):
        """hedge_ms=0 dispatches home + successor; either way the home
        node's store must end up holding every entry (directly or via
        store_pull/store_push replication)."""
        coordinator, servers = private_fleet(count=2, hedge_ms=0)
        host, port = coordinator.address
        seeds = range(301, 309)
        with ServiceClient(host, port) as client:
            results = client.submit_batch(
                [{"app": "fft", "config": "mild", "fault_seed": s} for s in seeds]
            )
        assert [r.qos for r in results] == [
            _serial_qos(FFT, MILD, s) for s in seeds
        ]
        shard_map = ShardMap(list(coordinator.config.nodes))
        by_label = {"%s:%d" % server.address: server for server in servers}
        for seed in seeds:
            key = RunKey(spec=FFT, config=MILD, fault_seed=seed, workload_seed=0)
            home = by_label[shard_map.assign(key.digest)]
            assert home._store.get_raw(key.digest) is not None, (
                f"seed {seed}: home shard lacks the entry"
            )
            assert home._store.get_raw(key.precise_reference().digest) is not None, (
                f"seed {seed}: home shard lacks the precise reference"
            )

    def test_store_pull_push_roundtrip_via_client(self, fleet):
        _, servers = fleet
        node_a, node_b = servers
        key = RunKey(spec=FFT, config=MEDIUM, fault_seed=SEED_PULL_PUSH, workload_seed=0)
        result = harness.run_key(key)
        digest = node_a._store.put(key, result.output, result.stats)
        with ServiceClient(*node_a.address) as client_a:
            payload = client_a.store_pull(digest)
            assert payload is not None and payload["digest"] == digest
            assert client_a.store_pull("ff" * 32) is None
        with ServiceClient(*node_b.address) as client_b:
            assert client_b.store_push(payload) is True
            assert client_b.store_pull(digest) == payload
            corrupt = dict(payload, payload_sha256="0" * 64)
            assert client_b.store_push(corrupt) is False


class TestFailover:
    def test_kill_one_node_mid_campaign_stays_bit_identical(self, private_fleet):
        coordinator, servers = private_fleet(count=2)
        host, port = coordinator.address
        first_half = range(401, 409)
        second_half = range(409, 417)
        serial = {s: _serial_qos(FFT, MEDIUM, s) for s in (*first_half, *second_half)}
        with ServiceClient(host, port) as client:
            before = client.submit_batch(
                [{"app": "fft", "config": "medium", "fault_seed": s} for s in first_half]
            )
            assert [r.qos for r in before] == [serial[s] for s in first_half]
            # One node dies mid-campaign; the survivor inherits its keys.
            victim = servers[0]
            victim.initiate_drain()
            victim.drain(timeout=10)
            victim.stop()
            after = client.submit_batch(
                [{"app": "fft", "config": "medium", "fault_seed": s} for s in second_half]
            )
            assert [r.qos for r in after] == [serial[s] for s in second_half]
            # The full campaign re-asked end to end still matches serial
            # (survivor store + re-execution of the victim's lost keys).
            full = client.submit_batch(
                [
                    {"app": "fft", "config": "medium", "fault_seed": s}
                    for s in (*first_half, *second_half)
                ]
            )
            assert [r.qos for r in full] == [
                serial[s] for s in (*first_half, *second_half)
            ]
            health = client.healthz()
            assert health["nodes_alive"] == 1
            metrics = client.metrics()
            assert metrics["counters"].get("fabric.failovers", 0) > 0

    def test_fleet_loss_falls_back_to_local_execution(self, private_fleet):
        coordinator, servers = private_fleet(count=2)
        host, port = coordinator.address
        serial = sum(_serial_qos(FFT, MEDIUM, s) for s in range(1, 4)) / 3
        client = ServiceClient(host, port)
        try:
            with routed(client, fallback_local=True) as route:
                assert harness.mean_qos(FFT, MEDIUM, runs=3) == serial
                assert not route.lost
                # The entire fabric disappears mid-campaign.
                _stop_fleet(coordinator, servers)
                assert harness.mean_qos(FFT, MEDIUM, runs=3) == serial
                assert route.lost
                # Later queries skip the wire entirely.
                key = RunKey(spec=FFT, config=MEDIUM, fault_seed=1, workload_seed=0)
                assert not route.accepts(key)
        finally:
            client.close()

    def test_strict_route_raises_on_fleet_loss(self, private_fleet):
        from repro.service import ServiceError

        coordinator, servers = private_fleet(count=1)
        host, port = coordinator.address
        client = ServiceClient(host, port)
        try:
            with routed(client):  # --via-service semantics: no fallback
                _stop_fleet(coordinator, servers)
                with pytest.raises(ServiceError):
                    harness.mean_qos(FFT, MEDIUM, runs=2)
        finally:
            client.close()


class TestObservability:
    def test_metrics_merge_node_registries_and_fabric_counters(self, fleet, client):
        coordinator, servers = fleet
        merged = client.metrics()
        node_counters = [
            server.metrics_payload()["counters"] for server in servers
        ]
        for name in ("service.requests_total", "service.hits", "service.misses"):
            expected = sum(counters.get(name, 0) for counters in node_counters)
            assert merged["counters"].get(name, 0) == expected
        assert merged["counters"]["fabric.batches_total"] >= 1
        assert merged["counters"]["fabric.items_total"] >= len(list(BATCH_SEEDS))
        assert merged["gauges"]["nodes_merged"] == len(servers)
        labels = {"%s:%d" % server.address for server in servers}
        assert set(merged["nodes"]) == labels
        for label in labels:
            assert "gauges" in merged["nodes"][label]

    def test_healthz_and_shards_payloads(self, fleet, client):
        coordinator, _ = fleet
        health = client.healthz()
        assert health["role"] == "coordinator"
        assert health["nodes_alive"] == health["nodes_total"] == 2
        shards = coordinator.shards_payload()
        assert set(shards["nodes"]) == set(coordinator.config.nodes)
        assert all(shards["alive"].values())

    def test_http_get_surface(self, fleet):
        import json
        import urllib.request

        coordinator, _ = fleet
        host, port = coordinator.address
        for path in ("healthz", "metrics", "config", "shards"):
            with urllib.request.urlopen(f"http://{host}:{port}/{path}") as response:
                payload = json.load(response)
            assert payload, path
        config = json.load(
            urllib.request.urlopen(f"http://{host}:{port}/config")
        )
        assert config["role"] == "coordinator"
        assert list(config["nodes"]) == list(coordinator.config.nodes)


class TestCoordinatorErrors:
    def test_unknown_op_and_bad_batch(self, fleet):
        coordinator, _ = fleet
        response = coordinator.handle_message({"op": "warp", "id": 9})
        assert not response["ok"] and response["id"] == 9
        assert response["error"]["code"] == "bad_request"
        response = coordinator.handle_message({"op": "batch", "id": 10, "items": []})
        assert not response["ok"]
        assert response["error"]["code"] == "bad_request"

    def test_invalid_item_fails_inline_without_dispatch(self, fleet, client):
        results = client.submit_batch(
            [
                {"app": "fft", "config": "medium", "fault_seed": SEED_SUBMIT},
                {"app": "no-such-app", "config": "medium"},
            ],
            raise_on_error=False,
        )
        assert results[0].qos == _serial_qos(FFT, MEDIUM, SEED_SUBMIT)
        assert results[1]["code"] == "bad_request"

    def test_draining_coordinator_rejects(self, private_fleet):
        coordinator, _ = private_fleet(count=1)
        coordinator.initiate_drain()
        response = coordinator.handle_message(
            {"op": "submit", "id": 1, "app": "fft", "config": "medium"}
        )
        assert not response["ok"]
        assert response["error"]["code"] == "draining"
