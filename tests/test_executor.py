"""Tests for the parallel experiment executor.

Covers the tentpole guarantees: deterministic result ordering, serial
vs parallel bit-identical QoS, chunked partitioning, bounded retry of
failing jobs, pool rebuild after worker crashes, and the promise that
partial results are never silently returned.
"""

import dataclasses
import multiprocessing
import os
import time

import pytest

from repro.apps import app_by_name
from repro.experiments import executor as executor_mod
from repro.experiments.executor import (
    ExecutorError,
    Job,
    JobError,
    mean_of,
    partition,
    qos_errors,
    register_task,
    run_jobs,
)
from repro.experiments.harness import mean_qos
from repro.hardware.config import BASELINE, MEDIUM, MILD

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Shrunken workloads keep the end-to-end tests honest (same code paths
#: as the paper grids) while fast.  Distinct names keep the harness
#: caches of the real apps untouched.
SMALL_APPS = {
    "FFT": dataclasses.replace(
        app_by_name("fft"), name="FFT@small", default_args=(64, 0)
    ),
    "SOR": dataclasses.replace(
        app_by_name("sor"), name="SOR@small", default_args=(12, 4, 0)
    ),
    "MonteCarlo": dataclasses.replace(
        app_by_name("montecarlo"), name="MonteCarlo@small", default_args=(2000, 0)
    ),
}


# ----------------------------------------------------------------------
# Custom tasks for fault-injection tests.  Module-level so fork-started
# workers inherit both the functions and their registration.  State is
# shared through a scratch file (os.environ survives fork and spawn).
# ----------------------------------------------------------------------

_COUNTER_ENV = "REPRO_EXECUTOR_TEST_COUNTER"


def _bump_counter() -> int:
    path = os.environ[_COUNTER_ENV]
    with open(path, "a") as handle:
        handle.write("x")
    return os.path.getsize(path)


def _flaky_twice_task(job):
    """Raises on its first two attempts for fault_seed 3, then succeeds."""
    if job.fault_seed == 3 and _bump_counter() <= 2:
        raise RuntimeError("transient worker failure")
    return job.fault_seed * 10


def _always_fails_task(job):
    if job.fault_seed == 2:
        raise ValueError("boom")
    return job.fault_seed * 10


def _crash_once_task(job):
    """Hard-kills the worker process once, then succeeds."""
    if job.fault_seed == 3 and _bump_counter() == 1:
        os._exit(3)
    return job.fault_seed * 10


def _always_crashes_task(job):
    os._exit(3)


def _staggered_task(job):
    # The first-submitted job finishes last: ordering must not follow
    # completion order.
    if job.fault_seed == 9:
        time.sleep(0.4)
    return job.fault_seed * 10


register_task("test-flaky-twice", _flaky_twice_task)
register_task("test-always-fails", _always_fails_task)
register_task("test-crash-once", _crash_once_task)
register_task("test-always-crashes", _always_crashes_task)
register_task("test-staggered", _staggered_task)


def _jobs_for(task, seeds):
    spec = SMALL_APPS["MonteCarlo"]
    return [Job(spec=spec, config=BASELINE, fault_seed=seed, task=task) for seed in seeds]


@pytest.fixture
def counter_file(tmp_path, monkeypatch):
    path = tmp_path / "counter"
    path.write_text("")
    monkeypatch.setenv(_COUNTER_ENV, str(path))
    return path


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------


class TestPartition:
    def test_contiguous_chunks(self):
        jobs = _jobs_for("qos", range(7))
        chunks = partition(jobs, 3)
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [job for chunk in chunks for job in chunk] == jobs

    def test_chunk_size_one(self):
        jobs = _jobs_for("qos", range(3))
        assert [len(c) for c in partition(jobs, 1)] == [1, 1, 1]

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            partition(_jobs_for("qos", range(3)), 0)

    def test_empty_grid(self):
        assert run_jobs([]) == []
        assert run_jobs([], workers=4) == []

    def test_mean_of_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_of([])


# ----------------------------------------------------------------------
# Serial path
# ----------------------------------------------------------------------


class TestSerialPath:
    def test_results_in_job_order(self):
        results = run_jobs(_jobs_for("test-staggered", [9, 1, 5, 3]))
        assert results == [90, 10, 50, 30]

    def test_job_error_carries_identity(self):
        with pytest.raises(JobError) as excinfo:
            run_jobs(_jobs_for("test-always-fails", [1, 2, 3]))
        assert excinfo.value.fault_seed == 2
        assert excinfo.value.app == "MonteCarlo@small"
        assert "fault_seed=2" in str(excinfo.value)

    def test_unknown_task_rejected(self):
        with pytest.raises(JobError):
            run_jobs(_jobs_for("no-such-task", [1]))


# ----------------------------------------------------------------------
# Parallel ordering + fault injection
# ----------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
class TestParallelExecution:
    def test_ordering_independent_of_completion(self):
        results = run_jobs(
            _jobs_for("test-staggered", [9, 1, 5, 3]), workers=2, chunk_size=1
        )
        assert results == [90, 10, 50, 30]

    def test_flaky_worker_retried_within_budget(self, counter_file):
        results = run_jobs(
            _jobs_for("test-flaky-twice", [1, 2, 3, 4]),
            workers=2,
            retry_budget=2,
            chunk_size=1,
        )
        assert results == [10, 20, 30, 40]
        # The flaky job really did fail twice before succeeding.
        assert counter_file.stat().st_size == 3

    def test_budget_exhaustion_surfaces_identity(self):
        with pytest.raises(ExecutorError) as excinfo:
            run_jobs(
                _jobs_for("test-always-fails", [1, 2, 3]),
                workers=2,
                retry_budget=1,
                chunk_size=1,
            )
        message = str(excinfo.value)
        assert "MonteCarlo@small" in message
        assert "baseline" in message
        assert "fault_seed=2" in message

    def test_failure_never_returns_partial_results(self):
        # Three of four jobs succeed; the failure must raise, not
        # silently shrink the result list.
        with pytest.raises(ExecutorError):
            run_jobs(
                _jobs_for("test-always-fails", [1, 2, 3, 4]),
                workers=2,
                retry_budget=0,
                chunk_size=1,
            )

    def test_worker_crash_rebuilds_pool(self, counter_file):
        results = run_jobs(
            _jobs_for("test-crash-once", [1, 2, 3, 4]),
            workers=2,
            retry_budget=2,
            chunk_size=1,
        )
        assert results == [10, 20, 30, 40]

    def test_crash_budget_exhaustion_raises(self):
        with pytest.raises(ExecutorError) as excinfo:
            run_jobs(
                _jobs_for("test-always-crashes", [1, 2]),
                workers=2,
                retry_budget=1,
                chunk_size=1,
            )
        assert "crashed" in str(excinfo.value)


# ----------------------------------------------------------------------
# Determinism: serial vs parallel bit-identical QoS
# ----------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
class TestDeterminism:
    @pytest.mark.parametrize("app", ["FFT", "SOR", "MonteCarlo"])
    def test_mean_qos_bit_identical_across_jobs(self, app):
        spec = SMALL_APPS[app]
        serial = mean_qos(spec, MEDIUM, runs=8, workload_seed=1)
        for jobs in (2, 4):
            parallel = mean_qos(spec, MEDIUM, runs=8, workload_seed=1, jobs=jobs)
            assert parallel == serial, (app, jobs)

    def test_per_seed_errors_bit_identical(self):
        spec = SMALL_APPS["FFT"]
        seeds = range(1, 7)
        serial = qos_errors(spec, MILD, seeds, workload_seed=1)
        parallel = qos_errors(spec, MILD, seeds, workload_seed=1, workers=2)
        assert parallel == serial

    def test_chunk_size_does_not_change_values(self):
        spec = SMALL_APPS["MonteCarlo"]
        jobs = [
            Job(spec=spec, config=MEDIUM, fault_seed=seed) for seed in range(1, 7)
        ]
        serial = run_jobs(jobs)
        for chunk_size in (1, 2, 5):
            assert run_jobs(jobs, workers=2, chunk_size=chunk_size) == serial
