"""Tests for the Table 2 hardware configurations."""

import dataclasses

import pytest

from repro.hardware.config import (
    AGGRESSIVE,
    BASELINE,
    MEDIUM,
    MILD,
    STRATEGY_NAMES,
    ErrorMode,
    HardwareConfig,
    Level,
    config_for_level,
)


class TestTable2Values:
    """The Medium column is taken from the literature (paper Table 2)."""

    def test_medium_dram(self):
        assert MEDIUM.dram_flip_per_second == 1e-5
        assert MEDIUM.dram_power_saving == 0.22

    def test_medium_sram(self):
        assert MEDIUM.sram_read_upset == pytest.approx(10 ** -7.4)
        assert MEDIUM.sram_write_failure == pytest.approx(10 ** -4.94)
        assert MEDIUM.sram_power_saving == 0.80

    def test_medium_fp(self):
        assert MEDIUM.float_mantissa_bits == 8
        assert MEDIUM.double_mantissa_bits == 16
        assert MEDIUM.fp_op_saving == 0.78

    def test_medium_timing(self):
        assert MEDIUM.timing_error_prob == 1e-4
        assert MEDIUM.int_op_saving == 0.22

    def test_monotonic_aggressiveness(self):
        # Error rates and savings both increase with aggressiveness.
        assert MILD.dram_flip_per_second < MEDIUM.dram_flip_per_second < AGGRESSIVE.dram_flip_per_second
        assert MILD.timing_error_prob < MEDIUM.timing_error_prob < AGGRESSIVE.timing_error_prob
        assert MILD.dram_power_saving < MEDIUM.dram_power_saving < AGGRESSIVE.dram_power_saving
        assert MILD.fp_op_saving < MEDIUM.fp_op_saving < AGGRESSIVE.fp_op_saving
        assert MILD.float_mantissa_bits > MEDIUM.float_mantissa_bits > AGGRESSIVE.float_mantissa_bits

    def test_baseline_approximates_nothing(self):
        assert not BASELINE.approximates_anything
        for config in (MILD, MEDIUM, AGGRESSIVE):
            assert config.approximates_anything

    def test_default_error_mode_is_random(self):
        # The paper uses the random-value model for its headline results.
        for config in (MILD, MEDIUM, AGGRESSIVE):
            assert config.error_mode is ErrorMode.RANDOM


class TestLevels:
    def test_level_lookup(self):
        assert config_for_level(Level.BASELINE) is BASELINE
        assert config_for_level(Level.MILD) is MILD
        assert config_for_level(Level.MEDIUM) is MEDIUM
        assert config_for_level(Level.AGGRESSIVE) is AGGRESSIVE

    def test_level_with_error_mode(self):
        config = config_for_level(Level.MEDIUM, ErrorMode.LAST_VALUE)
        assert config.error_mode is ErrorMode.LAST_VALUE
        assert config.timing_error_prob == MEDIUM.timing_error_prob

    def test_bar_labels_match_figure4(self):
        assert [lvl.bar_label for lvl in Level] == ["B", "1", "2", "3"]


class TestAblation:
    def test_only_keeps_one_strategy(self):
        config = AGGRESSIVE.only("timing")
        assert config.timing_error_prob == AGGRESSIVE.timing_error_prob
        assert config.int_op_saving == AGGRESSIVE.int_op_saving
        assert config.dram_flip_per_second == 0.0
        assert config.sram_read_upset == 0.0
        assert config.sram_write_failure == 0.0
        assert config.float_mantissa_bits == 24

    def test_only_dram(self):
        config = AGGRESSIVE.only("dram")
        assert config.dram_flip_per_second == AGGRESSIVE.dram_flip_per_second
        assert config.timing_error_prob == 0.0
        assert config.sram_power_saving == 0.0

    def test_only_sram_read_vs_write(self):
        read_only = AGGRESSIVE.only("sram_read")
        assert read_only.sram_read_upset > 0
        assert read_only.sram_write_failure == 0.0
        write_only = AGGRESSIVE.only("sram_write")
        assert write_only.sram_write_failure > 0
        assert write_only.sram_read_upset == 0.0

    def test_only_rejects_unknown(self):
        with pytest.raises(ValueError):
            AGGRESSIVE.only("cosmic-rays")

    def test_all_strategies_enumerable(self):
        for strategy in STRATEGY_NAMES:
            config = MEDIUM.only(strategy)
            assert config.approximates_anything or strategy in ("dram",)


class TestValidation:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            dataclasses.replace(MEDIUM, timing_error_prob=1.5)

    def test_rejects_bad_saving(self):
        with pytest.raises(ValueError):
            dataclasses.replace(MEDIUM, fp_op_saving=1.0)

    def test_rejects_bad_mantissa(self):
        with pytest.raises(ValueError):
            dataclasses.replace(MEDIUM, float_mantissa_bits=0)
        with pytest.raises(ValueError):
            dataclasses.replace(MEDIUM, double_mantissa_bits=64)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MEDIUM.timing_error_prob = 0.5
