"""Tests for static reliability bounds and their dynamic soundness."""

import pytest

from repro.analysis import app_reliability, observed_fault_impact, soundness_check
from repro.analysis.flowgraph import build_flow_graph
from repro.analysis.reliability import (
    ASSUMED_RESIDENCY_SECONDS,
    BITS_PER_VALUE,
    LEVELS,
    app_output_id,
    node_rate,
    reliability_bound,
)
from repro.apps import ALL_APPS, app_by_name, load_sources
from repro.core.checker import check_modules
from repro.hardware.config import AGGRESSIVE, MEDIUM, MILD


class TestNodeRates:
    def test_sram_rate_is_read_plus_write(self):
        for config in (MILD, MEDIUM, AGGRESSIVE):
            assert node_rate("sram", config) == pytest.approx(
                config.sram_read_upset + config.sram_write_failure
            )

    def test_dram_rate_charges_full_residency(self):
        for config in (MILD, MEDIUM, AGGRESSIVE):
            expected = min(
                1.0,
                BITS_PER_VALUE
                * config.dram_flip_per_second
                * ASSUMED_RESIDENCY_SECONDS,
            )
            assert node_rate("dram", config) == pytest.approx(expected)

    def test_functional_units_share_timing_rate(self):
        assert node_rate("alu", MEDIUM) == MEDIUM.timing_error_prob
        assert node_rate("fpu", MEDIUM) == MEDIUM.timing_error_prob

    def test_unknown_mechanism_is_free(self):
        assert node_rate("none", AGGRESSIVE) == 0.0


class TestBounds:
    @pytest.fixture(scope="class")
    def montecarlo(self):
        spec = app_by_name("montecarlo")
        result = check_modules(load_sources(spec))
        assert result.ok
        return spec, build_flow_graph(result)

    def test_bounds_grow_with_hardware_aggressiveness(self, montecarlo):
        spec, graph = montecarlo
        output = app_output_id(spec)
        mild = reliability_bound(graph, output, MILD)
        medium = reliability_bound(graph, output, MEDIUM)
        aggressive = reliability_bound(graph, output, AGGRESSIVE)
        assert 0.0 < mild.bound < medium.bound < aggressive.bound <= 1.0

    def test_cone_includes_implicitly_flowing_approx_state(self, montecarlo):
        # MonteCarlo's output depends on approximate coordinates only
        # through an endorsed condition; the bound is meaningless if the
        # cone misses them.
        spec, graph = montecarlo
        bound = reliability_bound(graph, app_output_id(spec), MILD)
        assert bound.approx_cone_nodes > 0
        assert bound.bound > 0.0

    def test_contributors_are_ranked_and_bounded(self, montecarlo):
        spec, graph = montecarlo
        bound = reliability_bound(graph, app_output_id(spec), MEDIUM, top=3)
        assert len(bound.top_contributors) <= 3
        values = [c.contribution for c in bound.top_contributors]
        assert values == sorted(values, reverse=True)
        assert sum(c.contribution for c in bound.top_contributors) <= bound.bound + 1e-12

    def test_by_mechanism_sums_to_uncapped_bound(self, montecarlo):
        spec, graph = montecarlo
        bound = reliability_bound(graph, app_output_id(spec), MILD)
        assert not bound.saturated
        assert sum(bound.by_mechanism.values()) == pytest.approx(bound.bound)

    def test_missing_output_gives_empty_bound(self, montecarlo):
        _, graph = montecarlo
        bound = reliability_bound(graph, "return:nowhere.nothing", MILD)
        assert bound.bound == 0.0
        assert bound.cone_nodes == 0

    def test_mantissa_bits_reported_not_summed(self, montecarlo):
        spec, graph = montecarlo
        for level, config in LEVELS.items():
            bound = reliability_bound(graph, app_output_id(spec), config, level=level)
            assert bound.fp_mantissa_bits == config.float_mantissa_bits

    @pytest.mark.parametrize("spec", ALL_APPS, ids=lambda s: s.name)
    def test_every_app_has_a_positive_bound(self, spec):
        bounds = app_reliability(spec)
        assert len(bounds) == len(LEVELS)
        for bound in bounds:
            assert 0.0 < bound.bound <= 1.0

    def test_bounds_are_deterministic(self):
        spec = app_by_name("fft")
        first = [b.to_dict() for b in app_reliability(spec)]
        second = [b.to_dict() for b in app_reliability(spec)]
        assert first == second


class TestSoundness:
    def test_observed_fault_impact_handles_zero_ops(self):
        class Stats:
            total_faults = 0
            ops_total = 0

        assert observed_fault_impact(Stats()) == 0.0

    @pytest.mark.parametrize("name", ["montecarlo", "sor", "sparsematmult"])
    def test_observed_never_exceeds_bound(self, name):
        # The acceptance property on the cheap kernels; the CI analysis
        # lane replays every app via `repro analyze reliability --verify`.
        spec = app_by_name(name)
        records = soundness_check(spec, fault_seeds=(1, 2))
        assert records
        for record in records:
            assert record.sound, (
                f"{record.app}@{record.level} seed {record.fault_seed}: "
                f"observed {record.observed:.3e} > bound {record.bound:.3e}"
            )

    def test_record_serialization_carries_verdict(self):
        spec = app_by_name("montecarlo")
        record = soundness_check(spec, levels=["mild"])[0]
        data = record.to_dict()
        assert data["sound"] is True
        assert data["observed"] <= data["bound"]
