"""Tests for the interprocedural approximation-flow graph (ANALYSIS.md)."""

import textwrap

import pytest

from repro.analysis.flowgraph import (
    FlowGraph,
    FlowNode,
    SINK_KINDS,
    STORAGE_KINDS,
    build_flow_graph,
)
from repro.apps import ALL_APPS, app_by_name, load_sources
from repro.core.checker import check_modules

PRELUDE = "from repro import Approx, Precise, Top, Context, approximable, endorse\n"


def graph_of(source: str) -> FlowGraph:
    result = check_modules({"m": PRELUDE + textwrap.dedent(source)})
    assert result.ok, result.codes()
    return build_flow_graph(result)


class TestGraphPrimitives:
    def test_add_edge_requires_known_endpoints(self):
        graph = FlowGraph()
        graph.add_node("a", "local", "m", 1, 0, "approx", "sram", "a")
        with pytest.raises(KeyError):
            graph.add_edge("a", "missing")

    def test_rebinding_widens_qualifier(self):
        graph = FlowGraph()
        graph.add_node("x", "local", "m", 1, 0, "precise", "sram", "x")
        graph.add_node("x", "local", "m", 2, 0, "approx", "sram", "x")
        assert graph.nodes["x"].qualifier == "approx"
        graph.add_node("x", "local", "m", 3, 0, "precise", "sram", "x")
        assert graph.nodes["x"].qualifier == "approx"  # never narrows

    def test_reachability_is_sorted_and_reflexive(self):
        graph = FlowGraph()
        for ident in ("c", "a", "b"):
            graph.add_node(ident, "local", "m", 1, 0, "approx", "sram", ident)
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        assert graph.forward(["a"]) == ["a", "b", "c"]
        assert graph.backward(["c"]) == ["a", "b", "c"]
        assert graph.forward(["c"]) == ["c"]


class TestBuiltGraphs:
    def test_local_storage_profile(self):
        graph = graph_of(
            """
            def f() -> float:
                x: Approx[float] = 1.0
                return endorse(x)
            """
        )
        node = graph.nodes["local:m.f.x"]
        assert node.kind == "local"
        assert node.qualifier == "approx"
        assert node.mechanism == "sram"
        assert node.may_approx

    def test_array_storage_is_dram_with_element_qualifier(self):
        graph = graph_of(
            """
            def f() -> float:
                data: list[Approx[float]] = [0.0] * 4
                acc: Approx[float] = data[0]
                return endorse(acc)
            """
        )
        node = graph.nodes["local:m.f.data"]
        assert node.mechanism == "dram"
        assert node.qualifier == "approx"

    def test_dataflow_reaches_return(self):
        graph = graph_of(
            """
            def f() -> float:
                x: Approx[float] = 1.0
                y: Approx[float] = x * 2.0
                return endorse(y)
            """
        )
        cone = graph.backward(["return:m.f"])
        assert "local:m.f.x" in cone
        assert "local:m.f.y" in cone

    def test_implicit_flow_through_condition(self):
        # The MonteCarlo shape: a precise counter incremented under an
        # endorsed approximate condition must still be in the
        # condition's forward cone (the bound is unsound otherwise).
        graph = graph_of(
            """
            def f() -> int:
                a: Approx[float] = 0.5
                count: int = 0
                if endorse(a < 1.0):
                    count = count + 1
                return count
            """
        )
        assert "local:m.f.count" in graph.forward(["local:m.f.a"])
        cone = graph.backward(["return:m.f"])
        assert "local:m.f.a" in cone

    def test_interprocedural_argument_to_return(self):
        graph = graph_of(
            """
            def helper(v: Approx[float]) -> Approx[float]:
                return v * 2.0

            def f() -> float:
                x: Approx[float] = 1.0
                y: Approx[float] = helper(x)
                return endorse(y)
            """
        )
        forward = graph.forward(["local:m.f.x"])
        assert "local:m.helper.v" in forward
        assert "return:m.helper" in forward
        assert "return:m.f" in forward

    def test_endorse_nodes_are_listed(self):
        graph = graph_of(
            """
            def f() -> float:
                x: Approx[float] = 1.0
                return endorse(x)
            """
        )
        endorsements = graph.endorsements()
        assert len(endorsements) == 1
        assert endorsements[0].startswith("endorse:m:")

    def test_unchecked_escape_becomes_sink(self):
        graph = graph_of(
            """
            def f() -> None:
                x: Approx[int] = 1
                print(endorse(x))
            """
        )
        sinks = graph.sinks("unchecked")
        assert sinks
        assert all(graph.nodes[s].is_sink for s in sinks)
        assert all(graph.nodes[s].label in SINK_KINDS for s in sinks)

    def test_storage_nodes_are_storage_kinds(self):
        graph = graph_of(
            """
            def f() -> float:
                x: Approx[float] = 1.0
                return endorse(x)
            """
        )
        for ident in graph.storage_nodes():
            assert graph.nodes[ident].kind in STORAGE_KINDS


class TestAppGraphs:
    @pytest.mark.parametrize("spec", ALL_APPS, ids=lambda s: s.name)
    def test_every_app_builds_and_output_cone_is_approximate(self, spec):
        result = check_modules(load_sources(spec))
        assert result.ok, f"{spec.name}: {result.codes()}"
        graph = build_flow_graph(result)
        assert graph.nodes
        output = f"return:{spec.entry_module}.{spec.entry_function}"
        assert output in graph.nodes, f"{spec.name}: no output node {output}"
        cone = graph.backward([output])
        approx = [i for i in cone if graph.nodes[i].may_approx]
        assert approx, f"{spec.name}: no approximate node reaches the output"

    def test_graph_construction_is_deterministic(self):
        spec = app_by_name("montecarlo")
        result_a = check_modules(load_sources(spec))
        result_b = check_modules(load_sources(spec))
        graph_a = build_flow_graph(result_a)
        graph_b = build_flow_graph(result_b)
        assert graph_a.node_ids() == graph_b.node_ids()
        assert graph_a.edges() == graph_b.edges()
