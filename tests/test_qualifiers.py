"""Tests for the precision-qualifier lattice (paper Section 3.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.qualifiers import (
    APPROX,
    CONTEXT,
    LOST,
    PRECISE,
    TOP,
    Qualifier,
    adapt,
    is_subqualifier,
    parse_qualifier,
    qualifier_lub,
)
from repro.errors import QualifierError

ALL = list(Qualifier)
qualifiers = st.sampled_from(ALL)


class TestOrdering:
    def test_reflexive(self):
        for q in ALL:
            assert is_subqualifier(q, q)

    def test_top_is_greatest(self):
        for q in ALL:
            assert is_subqualifier(q, TOP)

    def test_everything_but_top_below_lost(self):
        for q in ALL:
            if q is TOP:
                assert not is_subqualifier(q, LOST)
            else:
                assert is_subqualifier(q, LOST)

    def test_precise_approx_unrelated(self):
        assert not is_subqualifier(PRECISE, APPROX)
        assert not is_subqualifier(APPROX, PRECISE)

    def test_context_unrelated_to_precise_and_approx(self):
        assert not is_subqualifier(CONTEXT, PRECISE)
        assert not is_subqualifier(CONTEXT, APPROX)
        assert not is_subqualifier(PRECISE, CONTEXT)
        assert not is_subqualifier(APPROX, CONTEXT)

    def test_lost_not_below_concrete(self):
        assert not is_subqualifier(LOST, PRECISE)
        assert not is_subqualifier(LOST, APPROX)

    @given(qualifiers, qualifiers, qualifiers)
    def test_transitive(self, a, b, c):
        if is_subqualifier(a, b) and is_subqualifier(b, c):
            assert is_subqualifier(a, c)

    @given(qualifiers, qualifiers)
    def test_antisymmetric(self, a, b):
        if is_subqualifier(a, b) and is_subqualifier(b, a):
            assert a is b


class TestLub:
    @given(qualifiers, qualifiers)
    def test_lub_is_upper_bound(self, a, b):
        join = qualifier_lub(a, b)
        assert is_subqualifier(a, join)
        assert is_subqualifier(b, join)

    @given(qualifiers, qualifiers)
    def test_lub_commutative(self, a, b):
        assert qualifier_lub(a, b) is qualifier_lub(b, a)

    @given(qualifiers)
    def test_lub_idempotent(self, a):
        assert qualifier_lub(a, a) is a

    def test_precise_approx_join_is_lost(self):
        assert qualifier_lub(PRECISE, APPROX) is LOST

    @given(qualifiers, qualifiers, qualifiers)
    def test_lub_is_least(self, a, b, c):
        # Any common upper bound is above the lub.
        if is_subqualifier(a, c) and is_subqualifier(b, c):
            assert is_subqualifier(qualifier_lub(a, b), c)


class TestAdaptation:
    """The paper's context-adaptation rules (q |> q')."""

    def test_context_through_precise(self):
        assert adapt(PRECISE, CONTEXT) is PRECISE

    def test_context_through_approx(self):
        assert adapt(APPROX, CONTEXT) is APPROX

    def test_context_through_context(self):
        assert adapt(CONTEXT, CONTEXT) is CONTEXT

    def test_context_through_top_is_lost(self):
        assert adapt(TOP, CONTEXT) is LOST

    def test_context_through_lost_is_lost(self):
        assert adapt(LOST, CONTEXT) is LOST

    @given(qualifiers, qualifiers)
    def test_non_context_unchanged(self, receiver, declared):
        if declared is not CONTEXT:
            assert adapt(receiver, declared) is declared

    @given(qualifiers)
    def test_adaptation_never_produces_context_from_concrete(self, receiver):
        result = adapt(receiver, CONTEXT)
        if receiver in (PRECISE, APPROX):
            assert result is receiver
        elif receiver is CONTEXT:
            assert result is CONTEXT
        else:
            assert result is LOST


class TestParsingAndProperties:
    def test_parse_roundtrip(self):
        for q in ALL:
            assert parse_qualifier(q.value) is q

    def test_parse_unknown_raises(self):
        with pytest.raises(QualifierError):
            parse_qualifier("fuzzy")

    def test_concrete_predicate(self):
        assert PRECISE.is_concrete
        assert APPROX.is_concrete
        assert TOP.is_concrete
        assert not CONTEXT.is_concrete
        assert not LOST.is_concrete

    def test_only_approx_may_be_approximate(self):
        assert APPROX.may_be_approximate
        for q in (PRECISE, TOP, CONTEXT, LOST):
            assert not q.may_be_approximate
