"""Tests for the experiment infrastructure (harness, census, drivers)."""

import dataclasses

import pytest

from repro.apps import ALL_APPS, app_by_name
from repro.experiments.annotations_census import census_app, census_sources
from repro.experiments.harness import mean_qos, precise_output, qos_error, run_app
from repro.experiments.table2 import format_table2, table2_rows
from repro.hardware.config import BASELINE, MEDIUM, MILD


class TestHarness:
    def test_run_app_returns_output_and_stats(self):
        spec = app_by_name("montecarlo")
        result = run_app(spec, BASELINE, fault_seed=0, workload_seed=0)
        assert result.output is not None
        assert result.stats.ops_total > 0

    def test_precise_output_cached(self):
        spec = app_by_name("montecarlo")
        first = precise_output(spec, workload_seed=0)
        second = precise_output(spec, workload_seed=0)
        assert first is second

    def test_workload_seed_changes_input(self):
        spec = app_by_name("montecarlo")
        a = run_app(spec, BASELINE, 0, workload_seed=1).output
        b = run_app(spec, BASELINE, 0, workload_seed=2).output
        assert a != b

    def test_qos_error_compares_same_workload(self):
        spec = app_by_name("sor")
        error = qos_error(spec, MILD, fault_seed=1, workload_seed=3)
        assert 0.0 <= error <= 1.0

    def test_mean_qos_averages(self):
        spec = app_by_name("montecarlo")
        assert 0.0 <= mean_qos(spec, MEDIUM, runs=3) <= 1.0

    def test_mean_qos_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            mean_qos(app_by_name("montecarlo"), MEDIUM, runs=0)

    def test_app_registry(self):
        assert len(ALL_APPS) == 9
        assert app_by_name("FFT").name == "FFT"
        assert app_by_name("fft").name == "FFT"
        with pytest.raises(KeyError):
            app_by_name("nonexistent")


class TestCensus:
    def test_census_counts_annotations(self):
        source = {
            "m": (
                "from repro import Approx, endorse\n"
                "def f(x: Approx[float], y: int) -> Approx[float]:\n"
                "    z: Approx[float] = x + y\n"
                "    w = 1\n"
                "    return endorse(z) + 0.0\n"
            )
        }
        census = census_sources(source)
        # Declarations: x, y, return, z, w  -> 5.
        assert census.declarations == 5
        # Annotated: x, return, z -> 3.
        assert census.annotated == 3
        assert census.endorsements == 1
        assert census.lines_of_code == 5

    def test_precise_annotations_do_not_count(self):
        source = {"m": "def f(x: float) -> int:\n    return 1\n"}
        census = census_sources(source)
        assert census.annotated == 0
        assert census.declarations == 2  # x and the return

    def test_string_forward_reference_detected(self):
        source = {
            "m": (
                "from repro import Context, approximable\n"
                "@approximable\n"
                "class C:\n"
                "    def m(self, o: Context[\"C\"]) -> None:\n"
                "        pass\n"
            )
        }
        census = census_sources(source)
        assert census.annotated >= 1

    def test_shared_rand_module_excluded(self):
        census = census_app(app_by_name("fft"))
        # fft.py alone; the shared rand helper is library code.
        assert census.lines_of_code < 200

    def test_every_app_has_partial_annotation(self):
        for spec in ALL_APPS:
            census = census_app(spec)
            assert 0.0 < census.annotated_fraction < 1.0, spec.name
            assert census.endorsements >= 1, spec.name


class TestTable2Driver:
    def test_rows_complete(self):
        rows = table2_rows()
        assert len(rows) == 10
        for row in rows:
            assert set(row) == {"quantity", "Mild", "Medium", "Aggressive"}

    def test_format_contains_levels(self):
        text = format_table2()
        assert "Mild" in text and "Aggressive" in text
        assert "10^-5" in text  # medium DRAM rate


class TestDriversSmoke:
    """One-app smoke coverage for the heavier drivers."""

    def test_figure3_row(self):
        from repro.experiments.figure3 import figure3_row

        row = figure3_row(app_by_name("montecarlo"))
        assert row["dram_approx_fraction"] < 0.05
        assert 0 <= row["fp_approx_fraction"] <= 1

    def test_figure4_row(self):
        from repro.experiments.figure4 import figure4_row

        row = figure4_row(app_by_name("montecarlo"))
        assert row["B"] == 1.0
        assert row["3"] < row["B"]

    def test_figure5_row(self):
        from repro.experiments.figure5 import figure5_row

        row = figure5_row(app_by_name("montecarlo"), runs=2)
        assert 0.0 <= row["Mild"] <= 1.0

    def test_table3_row(self):
        from repro.experiments.table3 import table3_row

        row = table3_row(app_by_name("montecarlo"))
        assert row["loc"] > 0
        assert row["endorsements"] == 1  # the paper also reports exactly 1

    def test_ablation_line_sizes(self):
        from repro.experiments.ablation import LINE_SIZES, line_size_rows

        rows = line_size_rows([app_by_name("sor")])
        fractions = [rows[0][size] for size in LINE_SIZES]
        assert fractions == sorted(fractions, reverse=True)


class TestParallelDrivers:
    """The jobs=N paths of the rewired drivers match their serial rows."""

    SMALL_MC = dataclasses.replace(
        app_by_name("montecarlo"),
        name="MonteCarlo@driver-test",
        default_args=(1000, 0),
    )

    @pytest.mark.slow
    def test_figure5_grid_matches_serial_row(self):
        from repro.experiments.figure5 import figure5_grid, figure5_row

        serial = figure5_row(self.SMALL_MC, runs=3)
        grid_serial = figure5_grid([self.SMALL_MC], runs=3)
        grid_parallel = figure5_grid([self.SMALL_MC], runs=3, jobs=2)
        assert grid_serial == [serial]
        assert grid_parallel == [serial]

    @pytest.mark.slow
    def test_ablation_line_sizes_parallel_identical(self):
        from repro.experiments.ablation import line_size_rows

        spec = app_by_name("sor")
        assert line_size_rows([spec], jobs=2) == line_size_rows([spec])
