"""Quality-recovery runtime: checks, slicing, selective re-execution.

The subsystem's contract (RECOVERY.md):

* **acceptability checks** judge an output *without* the precise
  reference — every app's precise output passes its own check, and
  crafted corruptions fail with a deterministic verdict and region;
* **slicing** maps a violation back through the approximation-flow
  graph to the minimal set of fault mechanisms that can have caused
  it — mechanisms carrying only provably output-irrelevant (dead)
  flow stay approximate;
* **selective re-execution** under the restricted configuration is
  **bit-identical** to a whole-program precise run — remaining faults
  can only land on dead values — and strictly cheaper wherever the
  slice is a proper subset of the program's mechanisms.
"""

import dataclasses
import math

import pytest

from repro.apps import ALL_APPS, app_by_name
from repro.experiments import harness
from repro.experiments.harness import mean_qos, precise_output, run_app, run_key
from repro.experiments.runkey import RunKey
from repro.hardware.config import AGGRESSIVE, BASELINE, MEDIUM, MILD
from repro.recovery import (
    RecoveryPolicy,
    approximate_slice,
    app_recovery_frontier,
    check_output,
    format_recovery_frontier,
    has_check,
    restrict_config,
    run_recovered,
    run_recovered_batch,
    suite_recovery_frontier,
)
from repro.recovery.calib import calibration_spec
from repro.recovery.checks import REGION_LIMIT
from repro.recovery.reexec import _output_affecting

CALIB = calibration_spec()
ALL_MECHANISMS = frozenset(("sram", "dram", "alu", "fpu"))


def _calib_key(fault_seed, config=AGGRESSIVE):
    return RunKey(spec=CALIB, config=config, fault_seed=fault_seed, workload_seed=0)


# ----------------------------------------------------------------------
# Acceptability checks
# ----------------------------------------------------------------------


class TestChecks:
    def test_every_app_has_a_dedicated_check(self):
        for spec in ALL_APPS:
            assert has_check(spec.name), spec.name
        assert has_check("RecoveryCalib")
        assert not has_check("NoSuchApp")

    @pytest.mark.parametrize("spec", ALL_APPS, ids=lambda spec: spec.name)
    @pytest.mark.parametrize("workload_seed", [0, 1])
    def test_precise_output_passes(self, spec, workload_seed):
        verdict = check_output(spec, workload_seed, precise_output(spec, workload_seed))
        assert verdict.ok, f"{spec.name}: {verdict.detail}"
        assert verdict.app == spec.name
        assert verdict.region == ()

    def test_calib_precise_output_passes(self):
        assert check_output(CALIB, 0, precise_output(CALIB, 0)).ok

    def test_fft_energy_conservation_catches_scaling(self):
        spec = app_by_name("fft")
        output = [3.0 * value for value in precise_output(spec, 0)]
        verdict = check_output(spec, 0, output)
        assert not verdict.ok
        assert "energy" in verdict.detail

    def test_fft_structure_catches_length_and_nonfinite(self):
        spec = app_by_name("fft")
        good = list(precise_output(spec, 0))
        assert not check_output(spec, 0, good[:-2]).ok
        poisoned = list(good)
        poisoned[5] = float("nan")
        verdict = check_output(spec, 0, poisoned)
        assert not verdict.ok
        assert verdict.region == (5,)

    def test_sor_interval_catches_runaway_entry(self):
        spec = app_by_name("sor")
        grid = list(precise_output(spec, 0))
        grid[1] = 1e9
        verdict = check_output(spec, 0, grid)
        assert not verdict.ok

    def test_montecarlo_range_and_tolerance(self):
        spec = app_by_name("montecarlo")
        assert not check_output(spec, 0, 5.0).ok  # outside [0, 4]
        assert not check_output(spec, 0, float("inf")).ok
        assert check_output(spec, 0, math.pi).ok

    def test_zxing_structural_validity(self):
        spec = app_by_name("zxing")
        precise = precise_output(spec, 0)
        assert check_output(spec, 0, precise).ok
        assert not check_output(spec, 0, 0).ok

    def test_raytracer_pixel_range(self):
        spec = app_by_name("raytracer")
        pixels = list(precise_output(spec, 0))
        pixels[3] = 999
        verdict = check_output(spec, 0, pixels)
        assert not verdict.ok
        assert verdict.region == (3,)

    def test_region_is_sorted_and_bounded(self):
        spec = app_by_name("raytracer")
        pixels = [-1] * (REGION_LIMIT * 3)
        verdict = check_output(spec, 0, pixels)
        assert not verdict.ok
        assert len(verdict.region) <= REGION_LIMIT
        assert list(verdict.region) == sorted(verdict.region)

    def test_calib_conservation(self):
        samples, bins, _ = CALIB.workload_args(0)
        histogram = precise_output(CALIB, 0)
        assert sum(histogram) == samples
        short = list(histogram)
        short[0] -= 1
        verdict = check_output(CALIB, 0, short)
        assert not verdict.ok
        assert verdict.check == "calibration.conservation"

    def test_generic_fallback_guards_finiteness(self):
        mystery = dataclasses.replace(CALIB, name="Mystery")
        assert check_output(mystery, 0, [1.0, 2.0]).ok
        verdict = check_output(mystery, 0, [1.0, float("nan")])
        assert not verdict.ok
        assert verdict.check == "generic.finite"

    def test_verdicts_are_deterministic(self):
        spec = app_by_name("fft")
        output = [3.0 * value for value in precise_output(spec, 0)]
        assert check_output(spec, 0, output) == check_output(spec, 0, output)


# ----------------------------------------------------------------------
# Slicing
# ----------------------------------------------------------------------


class TestSlicing:
    def test_calib_slice_is_a_proper_subset(self):
        prog_slice = approximate_slice(CALIB)
        assert prog_slice.mechanisms == frozenset(("alu", "dram"))
        assert prog_slice.all_mechanisms == ALL_MECHANISMS
        assert prog_slice.proper_subset
        assert prog_slice.dead, "the shadow pass must be provably dead"
        assert not prog_slice.escaped

    def test_fft_slice_covers_its_whole_cone(self):
        prog_slice = approximate_slice(app_by_name("fft"))
        assert prog_slice.mechanisms == frozenset(("dram", "fpu", "sram"))
        assert prog_slice.mechanisms == prog_slice.all_mechanisms
        assert not prog_slice.proper_subset

    def test_sor_slice(self):
        prog_slice = approximate_slice(app_by_name("sor"))
        assert prog_slice.mechanisms == frozenset(("dram", "fpu"))

    def test_imagej_slice(self):
        prog_slice = approximate_slice(app_by_name("imagej"))
        assert prog_slice.mechanisms == frozenset(("alu", "dram", "sram"))

    def test_slices_never_exceed_program_mechanisms(self):
        for spec in ALL_APPS:
            prog_slice = approximate_slice(spec)
            assert prog_slice.mechanisms <= prog_slice.all_mechanisms
            assert prog_slice.all_mechanisms <= ALL_MECHANISMS


# ----------------------------------------------------------------------
# Config restriction
# ----------------------------------------------------------------------


class TestRestrictConfig:
    def test_sram_restriction_zeroes_its_knobs(self):
        restricted = restrict_config(AGGRESSIVE, ("sram",))
        assert restricted.sram_read_upset == 0.0
        assert restricted.sram_write_failure == 0.0
        assert restricted.sram_power_saving == 0.0
        assert restricted.dram_flip_per_second == AGGRESSIVE.dram_flip_per_second
        assert restricted.name == f"{AGGRESSIVE.name}+precise[sram]"

    def test_fpu_restriction_restores_mantissas(self):
        restricted = restrict_config(AGGRESSIVE, ("fpu",))
        assert restricted.float_mantissa_bits == 24
        assert restricted.double_mantissa_bits == 52
        assert restricted.timing_error_prob == 0.0
        assert restricted.fp_op_saving == 0.0

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(ValueError, match="unknown mechanisms"):
            restrict_config(AGGRESSIVE, ("cache",))

    def test_full_restriction_is_not_output_affecting(self):
        restricted = restrict_config(AGGRESSIVE, ALL_MECHANISMS)
        assert not _output_affecting(restricted)
        assert _output_affecting(AGGRESSIVE)
        assert not _output_affecting(BASELINE)

    def test_full_restriction_shares_the_baseline_digest(self):
        """The fingerprint ignores the cosmetic name, so a fully-zeroed
        restricted config addresses the same store entries as BASELINE:
        the whole-program fallback never duplicates the reference run."""
        restricted = restrict_config(AGGRESSIVE, ALL_MECHANISMS)
        spec = app_by_name("fft")
        left = RunKey(spec=spec, config=restricted, fault_seed=0, workload_seed=0)
        right = RunKey(spec=spec, config=BASELINE, fault_seed=0, workload_seed=0)
        assert left.digest == right.digest


# ----------------------------------------------------------------------
# The recovery loop
# ----------------------------------------------------------------------


class TestRecoverCalib:
    def test_selective_retry_is_bit_identical_and_cheaper(self):
        reference = precise_output(CALIB, 0)
        for fault_seed in (1, 2, 3):
            recovered = run_recovered(_calib_key(fault_seed), RecoveryPolicy())
            outcome = recovered.outcome
            assert outcome.violation, "AGGRESSIVE must violate conservation"
            assert outcome.retry_kind == "selective"
            assert outcome.disabled == ("alu", "dram")
            assert outcome.kept == ("fpu", "sram")
            assert outcome.final_ok
            assert recovered.output == reference
            assert outcome.retry_energy < 1.0, "kept mechanisms must save energy"
            assert outcome.total_energy == pytest.approx(
                outcome.attempt_energy + outcome.retry_energy
            )

    def test_precise_mode_collapses_to_full_rerun(self):
        recovered = run_recovered(_calib_key(1), RecoveryPolicy("precise"))
        outcome = recovered.outcome
        assert outcome.violation and outcome.retried
        assert outcome.retry_kind == "full"
        assert outcome.disabled == ("alu", "dram", "fpu", "sram")
        assert outcome.kept == ()
        assert recovered.output == precise_output(CALIB, 0)
        assert outcome.retry_energy == pytest.approx(1.0)

    def test_selective_is_strictly_cheaper_than_precise(self):
        selective = run_recovered(_calib_key(1), RecoveryPolicy("selective"))
        precise = run_recovered(_calib_key(1), RecoveryPolicy("precise"))
        assert selective.output == precise.output
        assert (
            selective.outcome.retry_energy < precise.outcome.retry_energy
        ), "a proper-subset slice must beat the whole-program fallback"

    def test_clean_attempt_is_delivered_untouched(self):
        key = _calib_key(1, config=BASELINE)
        recovered = run_recovered(key, RecoveryPolicy())
        outcome = recovered.outcome
        assert not outcome.violation and not outcome.retried
        assert outcome.retry_kind is None and outcome.retry_energy == 0.0
        assert recovered.output == run_key(key).output

    def test_outcome_wire_roundtrip(self):
        from repro.recovery.reexec import RecoveryOutcome

        outcome = run_recovered(_calib_key(1), RecoveryPolicy()).outcome
        assert RecoveryOutcome.from_dict(outcome.to_dict()) == outcome


class TestRecoverApps:
    @pytest.mark.parametrize("name", ["fft", "sor", "imagej"])
    def test_recovered_output_matches_whole_program_precise(self, name):
        """The differential pin: whatever the retry kind, a recovered
        violation delivers exactly the precise output."""
        spec = app_by_name(name)
        reference = precise_output(spec, 0)
        saw_violation = False
        for fault_seed in (1, 2):
            key = RunKey(
                spec=spec, config=AGGRESSIVE, fault_seed=fault_seed, workload_seed=0
            )
            recovered = run_recovered(key, RecoveryPolicy())
            outcome = recovered.outcome
            if not outcome.violation:
                continue
            saw_violation = True
            assert outcome.final_ok
            assert recovered.output == reference
            assert outcome.retry_energy <= 1.0 + 1e-12
        assert saw_violation, f"{name} @ AGGRESSIVE should violate its check"

    def test_full_fallback_when_slice_is_whole_cone(self):
        spec = app_by_name("fft")
        key = RunKey(spec=spec, config=AGGRESSIVE, fault_seed=1, workload_seed=0)
        outcome = run_recovered(key, RecoveryPolicy()).outcome
        assert outcome.violation
        assert outcome.retry_kind == "full"
        assert outcome.retry_energy == pytest.approx(1.0)


class TestBatchRecovery:
    def test_batch_matches_serial_per_lane(self):
        keys = [_calib_key(fault_seed) for fault_seed in (1, 2, 3, 4)]
        batched = run_recovered_batch(keys, RecoveryPolicy())
        for key, lane in zip(keys, batched):
            serial = run_recovered(key, RecoveryPolicy())
            assert lane.output == serial.output
            assert lane.outcome == serial.outcome


# ----------------------------------------------------------------------
# Harness + executor integration
# ----------------------------------------------------------------------


class TestHarnessIntegration:
    def test_run_app_delivers_recovered_output(self):
        result = run_app(_calib_key(1), recover="selective")
        assert result.output == precise_output(CALIB, 0)

    def test_run_app_recover_rejects_tracer_and_args(self):
        with pytest.raises(TypeError, match="recover"):
            run_app(_calib_key(1), recover="selective", args=(8, 2, 0))

    def test_run_keys_batch_recover(self):
        keys = [_calib_key(fault_seed) for fault_seed in (1, 2)]
        outputs = [r.output for r in harness.run_keys_batch(keys, recover="selective")]
        assert outputs == [precise_output(CALIB, 0)] * 2

    def test_mean_qos_recover_composes_with_batch(self):
        spec = app_by_name("fft")
        serial = mean_qos(spec, AGGRESSIVE, runs=3, recover="selective")
        batched = mean_qos(spec, AGGRESSIVE, runs=3, recover="selective", batch=3)
        assert serial == batched == 0.0

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="unknown recovery mode"):
            RecoveryPolicy("bogus")
        assert RecoveryPolicy.coerce(None) is None
        assert RecoveryPolicy.coerce("precise").mode == "precise"
        policy = RecoveryPolicy("selective")
        assert RecoveryPolicy.coerce(policy) is policy

    def test_plan_mutual_exclusions(self):
        from repro.experiments.executor import ExecutionPlan

        with pytest.raises(ValueError, match="--via-service"):
            ExecutionPlan.resolve(
                via_service="h:1", via_fleet=None, jobs=None, batch=None,
                recover="selective",
            )
        with pytest.raises(ValueError, match="--jobs"):
            ExecutionPlan.resolve(
                via_service=None, via_fleet=None, jobs=4, batch=None,
                recover="selective",
            )
        plan = ExecutionPlan.resolve(
            via_service=None, via_fleet=None, jobs=None, batch=5,
            recover="selective",
        )
        assert plan.recover == "selective" and plan.batch == 5
        with pytest.raises(ValueError, match="unknown recovery mode"):
            ExecutionPlan.resolve(
                via_service=None, via_fleet=None, jobs=None, batch=None,
                recover="bogus",
            )


# ----------------------------------------------------------------------
# The frontier experiment
# ----------------------------------------------------------------------


class TestRecoveryFrontier:
    def test_calib_point_pins_the_economics(self):
        points = app_recovery_frontier(CALIB, levels=(AGGRESSIVE,), runs=3)
        (point,) = points
        assert point.violations == 3
        assert point.retries_selective == 3 and point.retries_full == 0
        assert point.unrecovered == 0
        assert point.recovered_qos == 0.0
        assert point.proper_subset
        assert point.disabled == ("alu", "dram")
        assert point.kept == ("fpu", "sram")
        # attempt + selective retry, strictly below attempt + precise.
        assert point.raw_energy < point.recovered_energy
        assert point.recovered_energy < point.raw_energy + 1.0
        assert point.energy_overhead == pytest.approx(
            point.recovered_energy - point.raw_energy
        )

    def test_rejects_nonpositive_runs(self):
        with pytest.raises(ValueError, match="positive"):
            app_recovery_frontier(CALIB, runs=0)

    def test_format_and_suite(self):
        frontier = suite_recovery_frontier([CALIB], levels=(MILD,), runs=1)
        text = format_recovery_frontier(frontier)
        assert "RecoveryCalib" in text
        assert "recQoS" in text

    def test_point_dict_is_json_safe(self):
        import json

        (point,) = app_recovery_frontier(CALIB, levels=(MEDIUM,), runs=1)
        payload = json.loads(json.dumps(point.to_dict()))
        assert payload["app"] == "RecoveryCalib"
