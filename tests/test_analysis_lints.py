"""Tests for the endorsement audit (AF001-AF006, ANALYSIS.md)."""

import textwrap

import pytest

from repro.analysis import LINT_CODES, run_lints
from repro.analysis.lints import WIDE_ENDORSE_THRESHOLD
from repro.apps import ALL_APPS, app_by_name, load_sources
from repro.core.checker import check_modules

PRELUDE = "from repro import Approx, Precise, Top, Context, approximable, endorse\n"


def lint_src(source: str):
    return run_lints(sources={"m": PRELUDE + textwrap.dedent(source)})


def codes_of(findings):
    return [f.code for f in findings]


class TestEndorsementFindings:
    def test_endorse_into_control_flow_is_af001(self):
        findings = lint_src(
            """
            def f() -> int:
                a: Approx[float] = 0.5
                count: int = 0
                if endorse(a < 1.0):
                    count = 1
                return count
            """
        )
        assert "AF001" in codes_of(findings)

    def test_endorse_into_array_index_is_af002(self):
        findings = lint_src(
            """
            def f() -> float:
                arr: list[float] = [0.0] * 8
                i: Approx[int] = 3
                return arr[endorse(i)]
            """
        )
        assert "AF002" in codes_of(findings)

    def test_endorse_escaping_to_unchecked_is_af003(self):
        findings = lint_src(
            """
            def f() -> None:
                a: Approx[int] = 1
                print(endorse(a))
            """
        )
        assert "AF003" in codes_of(findings)

    def test_plain_data_endorse_raises_no_sink_finding(self):
        findings = lint_src(
            """
            def f() -> float:
                x: Approx[float] = 1.0
                y: float = endorse(x)
                return y
            """
        )
        assert not {"AF001", "AF002", "AF003"} & set(codes_of(findings))

    def test_wide_endorsement_is_af005_warning(self):
        names = [f"x{i}" for i in range(WIDE_ENDORSE_THRESHOLD)]
        lines = ["def f() -> int:", "    count: int = 0"]
        lines += [f"    {n}: Approx[float] = {i}.0" for i, n in enumerate(names)]
        total = " + ".join(names)
        lines += [f"    if endorse({total} > 1.0):", "        count = 1", "    return count"]
        findings = run_lints(sources={"m": PRELUDE + "\n".join(lines) + "\n"})
        wide = [f for f in findings if f.code == "AF005"]
        assert wide
        assert all(f.severity == "warning" for f in wide)
        assert all(f.width >= WIDE_ENDORSE_THRESHOLD for f in wide)

    def test_dead_approximation_is_af004(self):
        # Approx storage whose values only ever move through copies:
        # no approximate arithmetic ever touches it.
        findings = lint_src(
            """
            def f() -> float:
                x: Approx[float] = 1.0
                return endorse(x)
            """
        )
        assert "AF004" in codes_of(findings)

    def test_arithmetic_clears_af004(self):
        findings = lint_src(
            """
            def f() -> float:
                x: Approx[float] = 1.0
                y: Approx[float] = x * 2.0
                return endorse(y)
            """
        )
        assert "AF004" not in codes_of(findings)

    def test_wasted_placement_is_af006_warning(self):
        # An approximate DRAM array that is written but never read pays
        # the refresh-error exposure for nothing.
        findings = lint_src(
            """
            def waste(n: int) -> float:
                junk: list[Approx[float]] = [0.0] * n
                for i in range(n):
                    junk[i] = 1.0 * i
                total: float = 0.0
                for i in range(n):
                    total = total + 1.0
                return total
            """
        )
        wasted = [f for f in findings if f.code == "AF006"]
        assert wasted
        assert all(f.severity == "warning" for f in wasted)
        assert any("junk" in f.message for f in wasted)
        assert any("precise" in f.message for f in wasted)

    def test_read_array_clears_af006(self):
        findings = lint_src(
            """
            def use(n: int) -> float:
                data: list[Approx[float]] = [0.0] * n
                for i in range(n):
                    data[i] = 1.0 * i
                total: Approx[float] = 0.0
                for i in range(n):
                    total = total + data[i]
                return endorse(total)
            """
        )
        assert "AF006" not in codes_of(findings)

    def test_bundled_apps_have_no_wasted_placements(self):
        # Every bundled app reads what it stores approximately — AF006
        # firing on one would mean an annotation regression.
        for spec in ALL_APPS:
            findings = run_lints(result=check_modules(load_sources(spec)))
            assert "AF006" not in codes_of(findings), spec.name


class TestLintContract:
    def test_findings_are_sorted(self):
        spec = app_by_name("raytracer")
        result = check_modules(load_sources(spec))
        findings = run_lints(result=result)
        keys = [f.sort_key for f in findings]
        assert keys == sorted(keys)

    def test_codes_are_catalogued(self):
        spec = app_by_name("zxing")
        result = check_modules(load_sources(spec))
        for finding in run_lints(result=result):
            assert finding.code in LINT_CODES
            assert finding.severity in ("info", "warning")

    def test_deterministic_across_invocations(self):
        spec = app_by_name("lu")
        sources = load_sources(spec)
        first = run_lints(result=check_modules(sources))
        second = run_lints(result=check_modules(sources))
        assert first == second

    def test_ill_typed_program_is_rejected(self):
        with pytest.raises(ValueError):
            run_lints(
                sources={
                    "m": PRELUDE
                    + "def f() -> int:\n    a: Approx[int] = 1\n    return a\n"
                }
            )

    def test_needs_some_input(self):
        with pytest.raises(ValueError):
            run_lints()

    def test_montecarlo_single_endorse_is_narrow_info(self):
        # The paper's own example: one endorsement guarding the hit
        # counter is routine, not a warning.
        spec = app_by_name("montecarlo")
        findings = run_lints(result=check_modules(load_sources(spec)))
        af001 = [f for f in findings if f.code == "AF001"]
        assert len(af001) == 1
        assert af001[0].severity == "info"
        assert "AF005" not in codes_of(findings)
