"""Protocol v3 end-to-end: recover submits, gating, fabric relay.

Wire-level coverage for guaranteed-quality mode:

* a ``{recover: ...}`` submit executes (never a store hit), answers
  with the ``recovery`` block, and scores the *delivered* output —
  a recovered violation reports the precise run's QoS;
* v1/v2 requests stay bit-identical: the field is absent from their
  payloads and the daemon's answers are unchanged;
* a recover submit against a protocol-2-pinned daemon — directly or
  relayed through the fabric coordinator — fails fast with a clean
  ``unsupported_op`` envelope;
* the ``recovery.*`` metrics series counts checked/clean/violation/
  retry outcomes.
"""

import os

import pytest

from repro.apps import app_by_name
from repro.experiments import harness
from repro.experiments.harness import RunKey, qos_error
from repro.fabric import FabricConfig, FabricCoordinator
from repro.hardware.config import AGGRESSIVE, MEDIUM
from repro.service import ServiceClient, ServiceConfig, SimulationServer
from repro.service.client import ServiceError, ServiceRequestFailed
from repro.service.protocol import ERROR_UNSUPPORTED, PROTOCOL_VERSION, SimRequest

FFT = app_by_name("fft")


def _make_server(tmp_root, name, max_protocol=None, cache=True):
    kwargs = {} if max_protocol is None else {"max_protocol": max_protocol}
    server = SimulationServer(
        ServiceConfig(
            port=0,
            workers=1,
            warm_apps=("fft",),
            cache_dir=os.path.join(str(tmp_root), name) if cache else None,
            default_deadline_ms=120_000,
            **kwargs,
        )
    )
    server.start()
    return server


def _stop(server):
    server.initiate_drain()
    server.drain(timeout=10)
    server.stop()


@pytest.fixture(scope="module")
def v3_server(tmp_path_factory):
    server = _make_server(tmp_path_factory.mktemp("recovery-v3"), "node")
    yield server
    _stop(server)
    harness.clear_caches()


@pytest.fixture
def client(v3_server):
    host, port = v3_server.address
    with ServiceClient(host, port) as connection:
        yield connection


class TestProtocolV3Parsing:
    def test_version_is_3(self):
        assert PROTOCOL_VERSION == 3

    def test_recover_field_parses(self):
        request = SimRequest.from_wire(
            {"app": "fft", "config": "aggressive", "fault_seed": 1,
             "recover": "selective"}
        )
        assert request.recover == "selective"
        assert request.task_payload()["recover"] == "selective"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown recover mode"):
            SimRequest.from_wire({"app": "fft", "recover": "bogus"})

    def test_recover_excludes_budget_and_trace(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            SimRequest.from_wire(
                {"app": "fft", "qos_budget": 0.05, "recover": "selective"}
            )
        with pytest.raises(ValueError, match="mutually exclusive"):
            SimRequest.from_wire(
                {"app": "fft", "config": "mild", "recover": "selective",
                 "want_trace_summary": True}
            )

    def test_legacy_payloads_carry_no_recover(self):
        """v1/v2 requests are bit-identical: the new field never appears
        in their task payloads or changes their parsing."""
        v1 = SimRequest.from_wire({"app": "fft", "config": "medium", "fault_seed": 3})
        assert v1.recover is None
        assert "recover" not in v1.task_payload()
        v2 = SimRequest.from_wire({"app": "fft", "qos_budget": 0.05})
        assert v2.recover is None


class TestRecoverSubmit:
    def test_violation_is_recovered_and_scored_on_delivery(self, client):
        result = client.submit("fft", "aggressive", fault_seed=1, recover="selective")
        assert result.recovery is not None
        assert result.recovery["violation"] is True
        assert result.recovery["retried"] is True
        assert result.recovery["final_ok"] is True
        assert result.recovery["retry_kind"] in ("selective", "full")
        assert result.recovery["total_energy"] == pytest.approx(
            result.recovery["attempt_energy"] + result.recovery["retry_energy"]
        )
        # The delivered output is the precise re-execution: QoS 0.
        assert result.qos == 0.0

    def test_clean_attempt_reports_no_violation(self, client):
        raw = qos_error(
            RunKey(spec=FFT, config=MEDIUM, fault_seed=2, workload_seed=0)
        )
        result = client.submit("fft", "medium", fault_seed=2, recover="selective")
        assert result.recovery is not None
        if not result.recovery["violation"]:
            assert result.qos == raw
            assert result.recovery["retry_kind"] is None

    def test_plain_submits_are_unchanged(self, client):
        serial = qos_error(
            RunKey(spec=FFT, config=MEDIUM, fault_seed=5, workload_seed=0)
        )
        result = client.submit("fft", "medium", fault_seed=5)
        assert result.qos == serial
        assert result.recovery is None

    def test_recover_bypasses_the_store_hit_path(self, client):
        """A plain submit warms the store; the recover submit of the
        same key must still execute (the stored entry was never
        checked), so it is never answered ``cached``."""
        plain = client.submit("fft", "aggressive", fault_seed=7)
        again = client.submit("fft", "aggressive", fault_seed=7)
        assert again.cached, "sanity: the plain resubmit is a store hit"
        recovered = client.submit(
            "fft", "aggressive", fault_seed=7, recover="selective"
        )
        assert not recovered.cached
        assert recovered.recovery is not None
        assert plain.digest == recovered.digest

    def test_recover_rides_the_batch_op(self, client):
        results = client.submit_batch(
            [
                {"app": "fft", "config": "aggressive", "fault_seed": 9,
                 "recover": "selective"},
                {"app": "fft", "config": "medium", "fault_seed": 9},
            ]
        )
        assert results[0].recovery is not None
        assert results[1].recovery is None

    def test_client_guards_mutual_exclusion(self, client):
        with pytest.raises(ServiceError, match="not both"):
            client.submit("fft", qos_budget=0.05, recover="selective")
        with pytest.raises(ServiceError, match="trace"):
            client.submit(
                "fft", "medium", want_trace_summary=True, recover="selective"
            )

    def test_recovery_metrics_series(self, v3_server, client):
        client.submit("fft", "aggressive", fault_seed=11, recover="selective")
        client.submit("fft", "medium", fault_seed=11, recover="selective")
        counters = client.metrics()["counters"]
        assert counters.get("recovery.requests_total", 0) >= 2
        assert counters.get("recovery.checked", 0) >= 2
        assert counters.get("recovery.violations", 0) >= 1
        assert counters.get(
            "recovery.retries_selective", 0
        ) + counters.get("recovery.retries_full", 0) >= 1
        assert counters.get("recovery.unrecovered", 0) == 0

    def test_healthz_announces_protocol_3(self, client):
        assert client.healthz()["protocol"] == 3

    def test_cli_submit_recover_end_to_end(self, v3_server, capsys):
        from repro.cli import main

        host, port = v3_server.address
        code = main(
            ["submit", "fft", "--level", "aggressive", "--seed", "1",
             "--recover", "--host", host, "--port", str(port)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RECOVERED" in out
        assert "violation(s) recovered" in out

    def test_cli_submit_recover_json(self, v3_server, capsys):
        import json

        from repro.cli import main

        host, port = v3_server.address
        code = main(
            ["submit", "fft", "--level", "aggressive", "--seed", "1", "--runs",
             "2", "--recover", "--json", "--host", host, "--port", str(port)]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        for row in payload:
            assert row["recovery"]["final_ok"] is True


class TestVersionGating:
    def test_recover_against_v2_daemon_is_unsupported(self, tmp_path):
        server = _make_server(tmp_path, "v2", max_protocol=2)
        try:
            with ServiceClient(*server.address) as connection:
                assert connection.healthz()["protocol"] == 2
                with pytest.raises(ServiceRequestFailed) as failure:
                    connection.submit(
                        "fft", "medium", fault_seed=3, recover="selective"
                    )
                assert failure.value.code == ERROR_UNSUPPORTED
                # Fixed-config service is unaffected by the pin.
                serial = qos_error(
                    RunKey(spec=FFT, config=MEDIUM, fault_seed=3, workload_seed=0)
                )
                assert connection.submit("fft", "medium", fault_seed=3).qos == serial
        finally:
            _stop(server)
            harness.clear_caches()


class TestFabricRelay:
    def test_recover_relays_through_the_coordinator(self, tmp_path):
        """The coordinator forwards submit fields verbatim, so recover
        flows to the home daemon with zero coordinator changes."""
        servers = [_make_server(tmp_path, f"v3-{index}") for index in range(2)]
        coordinator = FabricCoordinator(
            FabricConfig(
                nodes=tuple("%s:%d" % server.address for server in servers),
                host="127.0.0.1",
                port=0,
            )
        )
        coordinator.start()
        try:
            with ServiceClient(*coordinator.address) as connection:
                result = connection.submit(
                    "fft", "aggressive", fault_seed=1, recover="selective"
                )
                assert result.recovery is not None
                assert result.recovery["final_ok"] is True
                assert result.qos == 0.0
        finally:
            coordinator.initiate_drain()
            coordinator.drain(timeout=10)
            coordinator.stop()
            for server in servers:
                _stop(server)
            harness.clear_caches()

    def test_recover_through_v2_fleet_fails_clean(self, tmp_path):
        servers = [
            _make_server(tmp_path, f"v2-{index}", max_protocol=2)
            for index in range(2)
        ]
        coordinator = FabricCoordinator(
            FabricConfig(
                nodes=tuple("%s:%d" % server.address for server in servers),
                host="127.0.0.1",
                port=0,
            )
        )
        coordinator.start()
        try:
            with ServiceClient(*coordinator.address) as connection:
                with pytest.raises(ServiceRequestFailed) as failure:
                    connection.submit(
                        "fft", "medium", fault_seed=4, recover="selective"
                    )
                assert failure.value.code == ERROR_UNSUPPORTED
        finally:
            coordinator.initiate_drain()
            coordinator.drain(timeout=10)
            coordinator.stop()
            for server in servers:
                _stop(server)
            harness.clear_caches()
