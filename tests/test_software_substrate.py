"""Tests for the software execution substrate (Section 4 alternative).

The paper notes approximation need not be architectural: "a runtime
system on top of commodity hardware can also offer approximate
execution features (e.g., lower floating point precision, elision of
memory operations)".  The SOFTWARE preset implements both.
"""

import dataclasses

import pytest

from repro.apps import app_by_name
from repro.experiments.harness import mean_qos, run_app
from repro.hardware.config import BASELINE, SOFTWARE
from repro.runtime import Simulator


class TestPreset:
    def test_no_hardware_fault_mechanisms(self):
        # Commodity hardware: no voltage scaling, no refresh games.
        assert SOFTWARE.timing_error_prob == 0.0
        assert SOFTWARE.sram_read_upset == 0.0
        assert SOFTWARE.sram_write_failure == 0.0
        assert SOFTWARE.dram_flip_per_second == 0.0

    def test_software_mechanisms_present(self):
        assert SOFTWARE.float_mantissa_bits < 24
        assert SOFTWARE.load_elision_prob > 0.0

    def test_elision_probability_validated(self):
        with pytest.raises(ValueError):
            dataclasses.replace(SOFTWARE, load_elision_prob=1.5)


class TestElisionMechanism:
    def _always_elide(self):
        return dataclasses.replace(
            SOFTWARE, load_elision_prob=1.0, float_mantissa_bits=24, name="elide-all"
        )

    def test_elided_load_returns_last_read(self):
        with Simulator(self._always_elide(), seed=0) as sim:
            backing = sim.new_array([10.0, 20.0, 30.0, 40.0] * 20, "float", True)
            first = sim.array_load(backing, 0)  # nothing to elide yet
            second = sim.array_load(backing, 1)  # elided -> stale 10.0
        assert first == 10.0
        assert second == 10.0
        assert sim.elided_loads == 1

    def test_precise_arrays_never_elided(self):
        with Simulator(self._always_elide(), seed=0) as sim:
            backing = sim.new_array([1, 2, 3] * 30, "int", approximate=False)
            assert sim.array_load(backing, 2) == 3
        assert sim.elided_loads == 0

    def test_zero_probability_never_elides(self):
        with Simulator(BASELINE, seed=0) as sim:
            backing = sim.new_array([1.0] * 100, "float", True)
            for i in range(100):
                sim.array_load(backing, i)
        assert sim.elided_loads == 0

    def test_elision_rate_near_configured(self):
        config = dataclasses.replace(SOFTWARE, load_elision_prob=0.25, name="q")
        with Simulator(config, seed=3) as sim:
            backing = sim.new_array([float(i) for i in range(64)], "float", True)
            for _ in range(40):
                for i in range(64):
                    sim.array_load(backing, i)
        rate = sim.elided_loads / (40 * 64)
        assert 0.15 < rate < 0.35

    def test_deterministic(self):
        def run(seed):
            with Simulator(SOFTWARE, seed=seed) as sim:
                backing = sim.new_array([float(i) for i in range(64)], "float", True)
                return [sim.array_load(backing, i) for i in range(64)]

        assert run(5) == run(5)


class TestOnApplications:
    def test_stencil_workloads_robust(self):
        # Neighbouring values are close: a stale read barely matters.
        assert mean_qos(app_by_name("sor"), SOFTWARE, runs=3) < 0.1

    def test_fft_is_elision_sensitive(self):
        # Butterfly networks amplify a stale operand; the software
        # substrate is a bad match for FFT — a finding the per-app
        # tuning of Section 6.2 would exploit.
        assert mean_qos(app_by_name("fft"), SOFTWARE, runs=3) > 0.2

    def test_saves_energy(self):
        from repro.energy import estimate_energy

        stats = run_app(app_by_name("raytracer"), BASELINE, 0, 0).stats
        assert 0.0 < estimate_energy(stats, SOFTWARE).savings < 0.2
