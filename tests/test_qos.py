"""Tests for the application QoS metrics (paper Table 3, column 3)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.qos import (
    binary_correctness,
    clamp01,
    decision_fraction_error,
    mean_entry_difference,
    mean_normalized_difference,
    mean_pixel_difference,
    normalized_difference,
)

small_floats = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestMeanEntryDifference:
    def test_identical_is_zero(self):
        assert mean_entry_difference([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_each_entry_clamped_to_one(self):
        # A single wildly wrong entry contributes at most 1.
        assert mean_entry_difference([0.0, 0.0], [1e9, 0.0]) == 0.5

    def test_nan_counts_as_one(self):
        assert mean_entry_difference([1.0], [math.nan]) == 1.0
        assert mean_entry_difference([1.0], [math.inf]) == 1.0

    def test_nested_matrices_flattened(self):
        precise = [[1.0, 2.0], [3.0, 4.0]]
        approx = [[1.0, 2.0], [3.0, 4.5]]
        assert mean_entry_difference(precise, approx) == pytest.approx(0.125)

    def test_length_mismatch_is_total_error(self):
        assert mean_entry_difference([1.0, 2.0], [1.0]) == 1.0

    def test_empty_outputs_identical(self):
        assert mean_entry_difference([], []) == 0.0

    @given(st.lists(small_floats, max_size=20), st.lists(small_floats, max_size=20))
    def test_always_in_unit_interval(self, a, b):
        assert 0.0 <= mean_entry_difference(a, b) <= 1.0

    @given(st.lists(small_floats, min_size=1, max_size=20))
    def test_self_comparison_zero(self, values):
        assert mean_entry_difference(values, values) == 0.0


class TestNormalizedDifference:
    def test_exact(self):
        assert normalized_difference(4.0, 3.0) == pytest.approx(0.25)

    def test_zero_reference(self):
        assert normalized_difference(0.0, 0.5) == 0.5
        assert normalized_difference(0.0, 5.0) == 1.0  # clamped

    def test_nan_is_one(self):
        assert normalized_difference(1.0, math.nan) == 1.0

    def test_mean_variant(self):
        assert mean_normalized_difference([2.0, 4.0], [1.0, 4.0]) == pytest.approx(0.25)


class TestBinaryCorrectness:
    def test_equal_strings(self):
        assert binary_correctness("HELLO", "HELLO") == 0.0

    def test_unequal(self):
        assert binary_correctness("HELLO", "HELLP") == 1.0
        assert binary_correctness("HELLO", None) == 1.0


class TestDecisionFraction:
    def test_all_correct(self):
        assert decision_fraction_error([True, False], [True, False]) == 0.0

    def test_coin_flipping_is_total_error(self):
        precise = [True, False, True, False]
        approx = [True, True, False, False]  # half right
        assert decision_fraction_error(precise, approx) == 1.0

    def test_worse_than_chance_clamps(self):
        assert decision_fraction_error([True, True], [False, False]) == 1.0

    def test_quarter_wrong(self):
        precise = [True] * 4
        approx = [True, True, True, False]
        assert decision_fraction_error(precise, approx) == pytest.approx(0.5)

    def test_length_mismatch(self):
        assert decision_fraction_error([True], []) == 1.0

    def test_empty(self):
        assert decision_fraction_error([], []) == 0.0


class TestPixelDifference:
    def test_identical_images(self):
        image = [[0, 128], [255, 64]]
        assert mean_pixel_difference(image, image) == 0.0

    def test_inverted_image_is_total_error(self):
        precise = [[0, 0], [0, 0]]
        approx = [[255, 255], [255, 255]]
        assert mean_pixel_difference(precise, approx) == 1.0

    def test_scaling(self):
        assert mean_pixel_difference([0], [128], max_value=255.0) == pytest.approx(128 / 255)

    def test_nan_pixel(self):
        assert mean_pixel_difference([0.5], [math.nan], max_value=1.0) == 1.0

    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=50),
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=50),
    )
    def test_unit_interval(self, a, b):
        assert 0.0 <= mean_pixel_difference(a, b) <= 1.0


class TestClamp:
    def test_basic(self):
        assert clamp01(0.5) == 0.5
        assert clamp01(-1.0) == 0.0
        assert clamp01(2.0) == 1.0
        assert clamp01(math.nan) == 1.0
