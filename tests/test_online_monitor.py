"""Tests for the Green-style online QoS controller."""

from repro.apps import app_by_name
from repro.experiments.online_monitor import LADDER, format_trace, run_online_monitor


class TestController:
    def test_robust_app_climbs_the_ladder(self):
        # MonteCarlo tolerates even Aggressive (Figure 5): the
        # controller should push it to high levels and keep it there.
        trace = run_online_monitor(app_by_name("montecarlo"), qos_budget=0.10, requests=20)
        assert trace.final_level >= 2
        assert trace.mean_level > 1.0

    def test_sensitive_app_backs_off(self):
        # SOR violates the budget at Medium (Figure 5): the controller
        # must spend most of its time at or below Mild.
        trace = run_online_monitor(app_by_name("sor"), qos_budget=0.05, requests=20)
        assert trace.mean_level < 2.0

    def test_violation_forces_immediate_step_down(self):
        trace = run_online_monitor(app_by_name("sor"), qos_budget=0.05, requests=20)
        for i, error in enumerate(trace.samples[:-1]):
            if error > trace.qos_budget and trace.levels[i] > 0:
                assert trace.levels[i + 1] == trace.levels[i] - 1

    def test_levels_stay_on_ladder(self):
        trace = run_online_monitor(app_by_name("imagej"), qos_budget=0.02, requests=15)
        assert all(0 <= level < len(LADDER) for level in trace.levels)

    def test_trace_is_deterministic(self):
        first = run_online_monitor(app_by_name("lu"), qos_budget=0.05, requests=10)
        second = run_online_monitor(app_by_name("lu"), qos_budget=0.05, requests=10)
        assert first.levels == second.levels
        assert first.samples == second.samples

    def test_format(self):
        trace = run_online_monitor(app_by_name("montecarlo"), qos_budget=0.1, requests=5)
        text = format_trace(trace)
        assert "MonteCarlo" in text and "violations" in text
