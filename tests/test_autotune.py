"""Tests for the offline per-application autotuner (Sec. 6.2 extension)."""

import pytest

from repro.apps import app_by_name
from repro.experiments.autotune import (
    LEVELS,
    TUNABLE,
    TuneResult,
    autotune,
    compose_config,
    format_tuning,
)
from repro.experiments.harness import mean_qos
from repro.hardware.config import AGGRESSIVE, BASELINE, MEDIUM, MILD


class TestComposeConfig:
    def test_all_off_is_baseline_parameters(self):
        config = compose_config({s: 0 for s in TUNABLE})
        assert not config.approximates_anything

    def test_all_max_matches_aggressive_parameters(self):
        config = compose_config({s: 3 for s in TUNABLE})
        assert config.dram_flip_per_second == AGGRESSIVE.dram_flip_per_second
        assert config.sram_write_failure == AGGRESSIVE.sram_write_failure
        assert config.float_mantissa_bits == AGGRESSIVE.float_mantissa_bits
        assert config.timing_error_prob == AGGRESSIVE.timing_error_prob

    def test_heterogeneous_levels(self):
        config = compose_config({"dram": 3, "sram": 0, "float_width": 1, "timing": 2})
        assert config.dram_flip_per_second == AGGRESSIVE.dram_flip_per_second
        assert config.sram_read_upset == 0.0
        assert config.float_mantissa_bits == MILD.float_mantissa_bits
        assert config.timing_error_prob == MEDIUM.timing_error_prob

    def test_sram_is_one_knob(self):
        config = compose_config({"dram": 0, "sram": 2, "float_width": 0, "timing": 0})
        assert config.sram_read_upset == MEDIUM.sram_read_upset
        assert config.sram_write_failure == MEDIUM.sram_write_failure
        assert config.sram_power_saving == MEDIUM.sram_power_saving


class TestAutotune:
    @pytest.fixture(scope="class")
    def tuned(self):
        return autotune(app_by_name("montecarlo"), qos_budget=0.05, runs=3)

    def test_result_meets_budget(self, tuned):
        assert tuned.measured_qos <= 0.05

    def test_result_saves_energy(self, tuned):
        assert 0.0 < tuned.savings < 0.6

    def test_tuned_config_verifies_out_of_sample(self, tuned):
        # Fresh fault seeds (not those used during the search) must
        # still roughly meet the budget — tuning must not overfit.
        spec = app_by_name("montecarlo")
        fresh_error = mean_qos(spec, tuned.config, runs=4, workload_seed=0)
        assert fresh_error <= 0.15

    def test_some_mechanism_enabled(self, tuned):
        assert any(level > 0 for level in tuned.levels.values())

    def test_tight_budget_yields_conservative_config(self):
        spec = app_by_name("sor")
        tight = autotune(spec, qos_budget=0.01, runs=2)
        loose = autotune(spec, qos_budget=0.5, runs=2)
        assert sum(tight.levels.values()) <= sum(loose.levels.values())
        assert tight.savings <= loose.savings + 1e-9

    def test_format(self, tuned):
        text = format_tuning([tuned], 0.05)
        assert "MonteCarlo" in text
        assert "QoS budget" in text
