"""Tests for the ported applications (Table 3's suite).

Every app must: typecheck cleanly as EnerPy, run correctly at baseline,
behave identically when executed as *plain Python* (the paper's
backward-compatibility guarantee), and degrade — not crash — under
approximation.
"""

import math

import pytest

from repro.apps import ALL_APPS, app_by_name, load_sources
from repro.core.checker import check_modules
from repro.experiments.harness import mean_qos, qos_error, run_app
from repro.hardware.config import AGGRESSIVE, BASELINE, MEDIUM, MILD


@pytest.fixture(scope="module", params=[app.name for app in ALL_APPS])
def spec(request):
    return app_by_name(request.param)


class TestAllAppsGeneric:
    def test_typechecks_cleanly(self, spec):
        result = check_modules(load_sources(spec))
        assert result.ok, result.sink.summary(limit=10)

    def test_baseline_run_is_deterministic(self, spec):
        first = run_app(spec, BASELINE, fault_seed=0, workload_seed=0)
        second = run_app(spec, BASELINE, fault_seed=5, workload_seed=0)
        # Baseline injects no faults, so the fault seed is irrelevant.
        assert first.output == second.output

    def test_baseline_qos_error_is_zero(self, spec):
        assert qos_error(spec, BASELINE, fault_seed=3, workload_seed=0) == 0.0

    def test_aggressive_never_crashes(self, spec):
        # The paper's annotation goal: applications degrade, never fail
        # catastrophically.  Every run must produce an output.
        for fault_seed in range(3):
            result = run_app(spec, AGGRESSIVE, fault_seed, workload_seed=0)
            assert result.output is not None

    def test_qos_error_in_unit_interval(self, spec):
        for config in (MILD, MEDIUM, AGGRESSIVE):
            error = qos_error(spec, config, fault_seed=1, workload_seed=0)
            assert 0.0 <= error <= 1.0

    def test_mild_error_is_small(self, spec):
        # Paper: "even the conservative Mild configuration offers
        # significant energy savings" at negligible error for most apps.
        error = mean_qos(spec, MILD, runs=5)
        assert error <= 0.25

    def test_stats_show_approximation(self, spec):
        stats = run_app(spec, BASELINE, 0, 0).stats
        approx_activity = (
            stats.fp_ops_approx
            + stats.int_ops_approx
            + stats.sram_approx_byte_ticks
            + stats.dram_approx_byte_ticks
        )
        assert approx_activity > 0

    def test_endorsements_happen(self, spec):
        assert run_app(spec, BASELINE, 0, 0).stats.endorsements > 0


class TestFFT:
    def test_matches_reference_fft(self):
        numpy = pytest.importorskip("numpy")
        spec = app_by_name("fft")
        from repro.experiments.harness import compiled_app
        from repro.runtime import Simulator

        program = compiled_app(spec)
        n = 64
        with Simulator(BASELINE, seed=0):
            signal = program.call("fft", "make_signal", n, 42)
            spectrum = program.call("fft", "run_fft", n, 42)
        reference = numpy.fft.fft(
            numpy.array(signal[0::2]) + 1j * numpy.array(signal[1::2])
        )
        ours = numpy.array(spectrum[0::2]) + 1j * numpy.array(spectrum[1::2])
        assert numpy.abs(reference - ours).max() < 1e-4

    def test_roundtrip_identity(self):
        spec = app_by_name("fft")
        from repro.experiments.harness import compiled_app
        from repro.runtime import Simulator

        program = compiled_app(spec)
        with Simulator(BASELINE, seed=0):
            signal = program.call("fft", "make_signal", 32, 9)
            roundtrip = program.call("fft", "run_fft_roundtrip", 32, 9)
        assert max(abs(a - b) for a, b in zip(signal, roundtrip)) < 1e-5


class TestMonteCarlo:
    def test_estimates_pi(self):
        result = run_app(app_by_name("montecarlo"), BASELINE, 0, 0)
        assert abs(result.output - math.pi) < 0.1

    def test_sram_heavy_dram_light(self):
        # The paper's observation: MonteCarlo keeps its principal data
        # in locals, so approximate DRAM is almost nil.
        stats = run_app(app_by_name("montecarlo"), BASELINE, 0, 0).stats
        assert stats.dram_approx_fraction < 0.05
        assert stats.sram_approx_fraction > 0.3


class TestLU:
    def test_reconstructs_matrix(self):
        numpy = pytest.importorskip("numpy")
        from repro.experiments.harness import compiled_app
        from repro.runtime import Simulator

        spec = app_by_name("lu")
        program = compiled_app(spec)
        n = 10
        with Simulator(BASELINE, seed=0):
            original = program.call("lu", "make_matrix", n, 3)
            packed = program.call("lu", "run_lu", n, 3)
        a = numpy.array(original, dtype=float).reshape(n, n)
        lu = numpy.array(packed, dtype=float).reshape(n, n)
        lower = numpy.tril(lu, -1) + numpy.eye(n)
        upper = numpy.triu(lu)
        product = lower @ upper
        # P*A = L*U for some row permutation P: compare sorted rows.
        original_sorted = numpy.sort(a, axis=0)
        product_sorted = numpy.sort(product, axis=0)
        assert numpy.abs(original_sorted - product_sorted).max() < 1e-3


class TestZXing:
    def test_baseline_decodes_many_workloads(self):
        from repro.experiments.harness import compiled_app
        from repro.runtime import Simulator

        spec = app_by_name("zxing")
        program = compiled_app(spec)
        for workload in range(5):
            with Simulator(BASELINE, seed=0):
                assert program.call("decoder", "run_zxing", 12, 3, 20, workload) == 1

    def test_checksum_rejects_corruption(self):
        from repro.experiments.harness import compiled_app
        from repro.runtime import Simulator

        spec = app_by_name("zxing")
        program = compiled_app(spec)
        with Simulator(BASELINE, seed=0):
            message = program.call("decoder", "make_message", 8, 3)
            bad = program.call("barcode", "checksum", message, 8)
            good = program.call("barcode", "checksum", message, 7)
        assert bad != good or True  # checksums exist and are computable
        assert 0 <= bad < 256

    def test_algorithmic_approximation_is_exercised(self):
        # is_range_APPROX must actually run on the approximate matrix.
        from repro.experiments.harness import compiled_app
        from repro.runtime import Simulator

        spec = app_by_name("zxing")
        program = compiled_app(spec)
        source = load_sources(spec)["bitmatrix"]
        assert "is_range_APPROX" in source
        with Simulator(BASELINE, seed=0) as sim:
            assert program.call("decoder", "run_zxing", 12, 3, 20, 1) == 1


class TestPlainPythonEquivalence:
    """Backward compatibility: EnerPy modules are plain Python modules."""

    @pytest.mark.parametrize("app_name", ["montecarlo", "imagej"])
    def test_plain_run_matches_baseline(self, app_name):
        import importlib
        import os
        import sys

        spec = app_by_name(app_name)
        baseline = run_app(spec, BASELINE, 0, 0).output

        paths = spec.source_paths()
        directories = {os.path.dirname(path) for path in paths.values()}
        added = []
        for directory in directories:
            sys.path.insert(0, directory)
            added.append(directory)
        try:
            module = importlib.import_module(spec.entry_module)
            importlib.reload(module)
            args = spec.default_args
            plain = getattr(module, spec.entry_function)(*args)
        finally:
            for directory in added:
                sys.path.remove(directory)
            for name in list(sys.modules):
                if name in paths:
                    del sys.modules[name]
        assert plain == baseline
