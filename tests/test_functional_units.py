"""Tests for the approximate ALU and FPU (fault injection and semantics)."""

import dataclasses
import math

import pytest

from repro.hardware.alu import ApproxALU
from repro.hardware.config import AGGRESSIVE, BASELINE, MEDIUM, ErrorMode
from repro.hardware.fpu import ApproxFPU
from repro.hardware.rng import FaultRandom


def make_alu(config=BASELINE, seed=0):
    return ApproxALU(config, FaultRandom(seed))


def make_fpu(config=BASELINE, seed=0):
    return ApproxFPU(config, FaultRandom(seed))


def no_fault_config(base):
    """A config with the base's widths but zero fault probabilities."""
    return dataclasses.replace(base, timing_error_prob=0.0, name=base.name + ":nofault")


class TestALUSemantics:
    def test_precise_ops_exact(self):
        alu = make_alu()
        assert alu.precise_binop("add", 2, 3) == 5
        assert alu.precise_binop("mul", -4, 6) == -24
        assert alu.precise_binop("lt", 1, 2) is True
        assert alu.precise_ops == 3

    def test_precise_divide_by_zero_raises(self):
        alu = make_alu()
        with pytest.raises(ZeroDivisionError):
            alu.precise_binop("div", 1, 0)

    def test_approx_divide_by_zero_returns_zero(self):
        # Paper Section 5.2: approximation must not raise exceptions.
        alu = make_alu()
        assert alu.approx_binop("div", 7, 0) == 0
        assert alu.approx_binop("mod", 7, 0) == 0

    def test_approx_division_truncates_like_java(self):
        alu = make_alu()
        assert alu.approx_binop("div", -7, 2) == -3  # Java: trunc toward 0

    def test_approx_wraps_to_32_bits(self):
        alu = make_alu()
        assert alu.approx_binop("add", 2**31 - 1, 1) == -(2**31)

    def test_no_faults_at_baseline(self):
        alu = make_alu(BASELINE)
        for i in range(1000):
            assert alu.approx_binop("add", i, 1) == i + 1
        assert alu.faulted_ops == 0

    def test_unop(self):
        alu = make_alu()
        assert alu.approx_unop("neg", 5) == -5
        assert alu.approx_unop("abs", -5) == 5
        assert alu.approx_unop("inv", 0) == -1


class TestALUFaults:
    def test_aggressive_injects_faults(self):
        alu = make_alu(AGGRESSIVE, seed=42)
        faults = 0
        for i in range(10_000):
            if alu.approx_binop("add", i, 1) != ((i + 1 + 2**31) % 2**32) - 2**31:
                faults += 1
        # P(error)=1e-2: expect ~100 faults over 10k ops.
        assert 40 <= alu.faulted_ops <= 250
        assert faults == alu.faulted_ops

    def test_bitflip_mode_changes_one_bit(self):
        config = AGGRESSIVE.with_error_mode(ErrorMode.SINGLE_BIT_FLIP)
        config = dataclasses.replace(config, timing_error_prob=1.0, name="x")
        alu = ApproxALU(config, FaultRandom(7))
        result = alu.approx_binop("add", 8, 8)
        xor = (result ^ 16) & 0xFFFFFFFF
        assert xor != 0 and (xor & (xor - 1)) == 0  # exactly one bit differs

    def test_lastvalue_mode_repeats_previous_result(self):
        config = dataclasses.replace(
            AGGRESSIVE.with_error_mode(ErrorMode.LAST_VALUE), timing_error_prob=0.0, name="x"
        )
        alu = ApproxALU(config, FaultRandom(7))
        alu.approx_binop("add", 40, 2)  # last value becomes 42
        faulty = dataclasses.replace(config, timing_error_prob=1.0, name="y")
        alu._config = faulty
        assert alu.approx_binop("add", 1, 1) == 42

    def test_deterministic_given_seed(self):
        results_a = [make_alu(AGGRESSIVE, seed=5).approx_binop("mul", i, 3) for i in range(50)]
        results_b = [make_alu(AGGRESSIVE, seed=5).approx_binop("mul", i, 3) for i in range(50)]
        # Each fresh ALU replays the same stream.
        assert results_a == results_b


class TestFPUSemantics:
    def test_precise_ops_exact(self):
        fpu = make_fpu()
        assert fpu.precise_binop("add", 0.5, 0.25) == 0.75
        assert fpu.precise_binop("lt", 1.0, 2.0) is True

    def test_precise_divide_by_zero_raises(self):
        fpu = make_fpu()
        with pytest.raises(ZeroDivisionError):
            fpu.precise_binop("div", 1.0, 0.0)

    def test_approx_divide_by_zero_is_nan(self):
        fpu = make_fpu()
        assert math.isnan(fpu.approx_binop("div", 1.0, 0.0))

    def test_mantissa_truncation_applied(self):
        fpu = make_fpu(no_fault_config(MEDIUM))
        # With 8 mantissa bits, 1 + 2^-20 is indistinguishable from 1.
        result = fpu.approx_binop("add", 1.0 + 2**-20, 0.0)
        assert result == 1.0

    def test_baseline_approx_add_is_float32_exact(self):
        fpu = make_fpu(BASELINE)
        assert fpu.approx_binop("add", 0.5, 0.25) == 0.75

    def test_counts(self):
        fpu = make_fpu()
        fpu.approx_binop("mul", 2.0, 3.0)
        fpu.precise_binop("mul", 2.0, 3.0)
        assert fpu.approx_ops == 1
        assert fpu.precise_ops == 1


class TestFPUFaults:
    def test_aggressive_faults_present(self):
        fpu = make_fpu(AGGRESSIVE, seed=11)
        for i in range(10_000):
            fpu.approx_binop("add", float(i), 1.0)
        assert 40 <= fpu.faulted_ops <= 250

    def test_random_mode_changes_result_distribution(self):
        config = dataclasses.replace(AGGRESSIVE, timing_error_prob=1.0, name="x")
        fpu = ApproxFPU(config, FaultRandom(3))
        results = {fpu.approx_binop("add", 1.0, 1.0) for _ in range(20)}
        assert len(results) > 5  # random patterns, not a constant

    def test_approx_compare_can_fault(self):
        config = dataclasses.replace(AGGRESSIVE, timing_error_prob=1.0, name="x")
        fpu = ApproxFPU(config, FaultRandom(3))
        assert fpu.approx_binop("lt", 1.0, 2.0) is False  # inverted


class TestFaultRandom:
    def test_coin_extremes(self):
        rng = FaultRandom(0)
        assert not rng.coin(0.0)
        assert rng.coin(1.0)

    def test_binomial_hits_zero_probability(self):
        rng = FaultRandom(0)
        assert rng.binomial_hits(64, 0.0) == 0
        assert rng.binomial_hits(64, 1.0) == 64
        assert rng.binomial_hits(0, 0.5) == 0

    def test_binomial_hits_rate(self):
        rng = FaultRandom(1)
        total = sum(rng.binomial_hits(32, 0.01) for _ in range(10_000))
        # Expectation: 10000 * 32 * 0.01 = 3200.
        assert 2500 <= total <= 4000

    def test_spawn_independent_streams(self):
        root = FaultRandom(9)
        a = root.spawn("alu")
        b = root.spawn("fpu")
        assert [a.bits(32) for _ in range(5)] != [b.bits(32) for _ in range(5)]

    def test_spawn_deterministic(self):
        a = FaultRandom(9).spawn("alu")
        b = FaultRandom(9).spawn("alu")
        assert [a.bits(32) for _ in range(5)] == [b.bits(32) for _ in range(5)]
