"""Unit tests for the instrumenting compiler's generated code."""

import ast
import textwrap

from repro.core.checker import check_modules
from repro.core.instrument import CTX_NAME, instrument_module
from repro.hardware import BASELINE
from repro.runtime import Simulator

PRELUDE = "from repro import Approx, Precise, Top, Context, approximable, endorse\n"


def instrument(source: str):
    result = check_modules({"m": PRELUDE + textwrap.dedent(source)})
    assert result.ok, result.sink.summary()
    tree = result.modules["m"]
    rewritten, intra = instrument_module(tree, result.facts, {"m"})
    return ast.unparse(rewritten), intra


class TestGeneratedCode:
    def test_approx_binop_becomes_hook_call(self):
        code, _ = instrument(
            """
            def f() -> None:
                a: Approx[float] = 1.0
                b: Approx[float] = a + 2.0
            """
        )
        assert "_ej_binop('add', 'float'" in code

    def test_precise_binop_also_instrumented_for_counting(self):
        code, _ = instrument(
            """
            def f() -> int:
                x: int = 1 + 2
                return x
            """
        )
        assert "_ej_binop('add', 'int', False" in code

    def test_local_reads_and_writes_wrapped(self):
        code, _ = instrument(
            """
            def f() -> None:
                a: Approx[float] = 1.0
                b: Approx[float] = a
            """
        )
        assert "_ej_local_read" in code
        assert "_ej_local_write" in code

    def test_array_allocation_and_access(self):
        code, _ = instrument(
            """
            def f() -> None:
                arr: list[Approx[float]] = [0.0] * 8
                arr[0] = 1.0
                x: Approx[float] = arr[0]
            """
        )
        assert "_ej_new_array" in code
        assert "_ej_array_store" in code
        assert "_ej_array_load" in code

    def test_endorse_becomes_hook(self):
        code, _ = instrument(
            """
            def f() -> float:
                a: Approx[float] = 1.0
                return endorse(a)
            """
        )
        assert "_ej_endorse" in code

    def test_range_loop_counts_induction(self):
        code, _ = instrument(
            """
            def f(n: int) -> None:
                total: int = 0
                for i in range(n):
                    total = total + 1
            """
        )
        assert "_ej_range(" in code

    def test_hook_import_inserted(self):
        code, _ = instrument("def f() -> None:\n    pass\n")
        assert "from repro.runtime.hooks import" in code

    def test_approx_dispatch_rewrites_method_name(self):
        code, _ = instrument(
            """
            @approximable
            class S:
                v: Context[int]

                def __init__(self) -> None:
                    self.v = 0

                def m(self) -> int:
                    return 1

                def m_APPROX(self) -> Approx[int]:
                    return 2

            def use() -> int:
                s: Approx[S] = S()
                x: Approx[int] = s.m()
                return endorse(x)
            """
        )
        assert ".m_APPROX()" in code

    def test_context_flag_variable_bound_at_method_entry(self):
        code, _ = instrument(
            """
            @approximable
            class S:
                v: Context[int]

                def __init__(self) -> None:
                    self.v = 0

                def get(self) -> Context[int]:
                    return self.v + 1
            """
        )
        assert f"{CTX_NAME} = _ej_receiver_is_approx(self)" in code
        assert f"'context'" not in code.split("def get")[0] or True

    def test_constructor_becomes_new_object(self):
        code, _ = instrument(
            """
            @approximable
            class S:
                v: Context[int]

                def __init__(self) -> None:
                    self.v = 0

            def use() -> None:
                s: Approx[S] = S()
            """
        )
        assert "_ej_new_object(S, True" in code

    def test_intra_import_stripped(self):
        result = check_modules(
            {
                "helper": PRELUDE + "def g() -> int:\n    return 1\n",
                "m": PRELUDE + "from helper import g\n\ndef f() -> int:\n    return g()\n",
            }
        )
        assert result.ok
        _, intra = instrument_module(result.modules["m"], result.facts, {"helper", "m"})
        assert intra == [("helper", [("g", "g")])]

    def test_augassign_subscript_uses_temps(self):
        code, _ = instrument(
            """
            def f() -> None:
                arr: list[Approx[float]] = [0.0] * 4
                arr[1] += 2.0
            """
        )
        assert "_ej_t1" in code
        assert "_ej_array_store" in code

    def test_math_call_instrumented(self):
        code, _ = instrument(
            """
            import math

            def f() -> float:
                a: Approx[float] = 4.0
                r: Approx[float] = math.sqrt(a)
                return endorse(r)
            """
        )
        assert "_ej_math('sqrt'" in code

    def test_conversion_instrumented(self):
        code, _ = instrument(
            """
            def f() -> int:
                a: Approx[float] = 4.5
                i: Approx[int] = int(a)
                return endorse(i)
            """
        )
        assert "_ej_convert('int'" in code

    def test_upcast_disappears(self):
        code, _ = instrument(
            """
            def f() -> float:
                b: float = 1.0
                return endorse(Approx(b) + 1.0)
            """
        )
        assert "Approx(" not in code.split("def f")[1]


class TestGeneratedCodeRuns:
    def test_module_level_statements_uninstrumented(self):
        # Module-level code executes at import time, outside any
        # simulator; it must run without raising.
        result = check_modules(
            {
                "m": PRELUDE
                + "SIZE = 4 * 4\n\ndef f() -> int:\n    return SIZE\n"
            }
        )
        assert result.ok
        tree, _ = instrument_module(result.modules["m"], result.facts, {"m"})
        namespace = {}
        exec(compile(tree, "<test>", "exec"), namespace)  # must not raise
        with Simulator(BASELINE, seed=0):
            assert namespace["f"]() == 16

    def test_docstrings_preserved(self):
        code, _ = instrument(
            '''
            def f() -> None:
                """Docstring stays."""
                pass
            '''
        )
        assert "Docstring stays." in code
