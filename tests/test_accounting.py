"""Tests for byte-tick storage accounting (Figure 3's fractions)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.memory.accounting import StorageAccountant


class TestDRAMAccounting:
    def test_lifetime_weighting(self):
        acct = StorageAccountant()
        acct.allocate(1, approx_bytes=100, precise_bytes=50, now_tick=0)
        acct.free(1, now_tick=10)
        assert acct.dram_approx_byte_ticks == 1000
        assert acct.dram_precise_byte_ticks == 500

    def test_close_all_charges_live_allocations(self):
        acct = StorageAccountant()
        acct.allocate(1, 10, 0, now_tick=0)
        acct.allocate(2, 0, 10, now_tick=5)
        acct.close_all(now_tick=20)
        assert acct.live_count == 0
        assert acct.dram_approx_byte_ticks == 200
        assert acct.dram_precise_byte_ticks == 150

    def test_double_free_is_harmless(self):
        acct = StorageAccountant()
        acct.allocate(1, 10, 0, 0)
        acct.free(1, 5)
        acct.free(1, 50)
        assert acct.dram_approx_byte_ticks == 50

    def test_reregistration_keeps_birth_tick(self):
        acct = StorageAccountant()
        acct.allocate(1, 10, 0, now_tick=0)
        acct.allocate(1, 10, 0, now_tick=100)  # ignored
        acct.free(1, now_tick=10)
        assert acct.dram_approx_byte_ticks == 100

    def test_minimum_lifetime_one_tick(self):
        acct = StorageAccountant()
        acct.allocate(1, 10, 5, now_tick=7)
        acct.free(1, now_tick=7)
        assert acct.dram_approx_byte_ticks == 10
        assert acct.dram_precise_byte_ticks == 5

    def test_fraction(self):
        acct = StorageAccountant()
        acct.allocate(1, 30, 10, 0)
        acct.free(1, 1)
        assert acct.dram_approx_fraction == 0.75

    def test_empty_fraction_is_zero(self):
        acct = StorageAccountant()
        assert acct.dram_approx_fraction == 0.0
        assert acct.sram_approx_fraction == 0.0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),  # approx bytes
                st.integers(min_value=0, max_value=1000),  # precise bytes
                st.integers(min_value=0, max_value=100),  # birth
                st.integers(min_value=0, max_value=100),  # extra lifetime
            ),
            max_size=30,
        )
    )
    def test_fraction_always_in_unit_interval(self, allocations):
        acct = StorageAccountant()
        for i, (approx, precise, birth, life) in enumerate(allocations):
            acct.allocate(i, approx, precise, birth)
            acct.free(i, birth + life)
        assert 0.0 <= acct.dram_approx_fraction <= 1.0


class TestSRAMAccounting:
    def test_touch(self):
        acct = StorageAccountant()
        acct.touch_sram(4, approximate=True)
        acct.touch_sram(4, approximate=True)
        acct.touch_sram(8, approximate=False)
        assert acct.sram_approx_byte_ticks == 8
        assert acct.sram_precise_byte_ticks == 8
        assert acct.sram_approx_fraction == 0.5
