"""Tests for declaration collection and annotation parsing (pass 1)."""

import ast

import pytest

from repro.core.declarations import (
    ProgramDeclarations,
    collect_declarations,
    parse_annotation,
)
from repro.core.diagnostics import DiagnosticSink
from repro.core.qualifiers import APPROX, CONTEXT, PRECISE, TOP


def parse_ann(text: str, in_approximable: bool = False):
    sink = DiagnosticSink()
    node = ast.parse(text, mode="eval").body
    result = parse_annotation(node, sink, "m", in_approximable=in_approximable)
    return result, sink


class TestAnnotationParsing:
    def test_plain_primitives(self):
        for name in ("int", "float", "bool"):
            parsed, sink = parse_ann(name)
            assert parsed.is_primitive and parsed.name == name
            assert parsed.qualifier is PRECISE
            assert not sink.has_errors

    def test_qualified_primitives(self):
        parsed, _ = parse_ann("Approx[float]")
        assert parsed.qualifier is APPROX and parsed.name == "float"
        parsed, _ = parse_ann("Top[int]")
        assert parsed.qualifier is TOP

    def test_context_requires_approximable(self):
        _, sink = parse_ann("Context[int]", in_approximable=False)
        assert "context-outside" in sink.codes()
        parsed, sink = parse_ann("Context[int]", in_approximable=True)
        assert parsed.qualifier is CONTEXT
        assert not sink.has_errors

    def test_list_of_approx_elements(self):
        parsed, _ = parse_ann("list[Approx[float]]")
        assert parsed.is_array
        assert parsed.element.qualifier is APPROX
        assert parsed.qualifier is PRECISE  # the reference stays precise

    def test_approx_list_sugar(self):
        sugar, _ = parse_ann("Approx[list[float]]")
        explicit, _ = parse_ann("list[Approx[float]]")
        assert sugar == explicit

    def test_string_forward_reference(self):
        parsed, _ = parse_ann('"Vector3f"')
        assert parsed.is_reference and parsed.name == "Vector3f"

    def test_qualified_forward_reference(self):
        parsed, _ = parse_ann('Context["Vector3f"]', in_approximable=True)
        assert parsed.qualifier is CONTEXT and parsed.name == "Vector3f"

    def test_nested_qualifiers_rejected(self):
        _, sink = parse_ann("Approx[Approx[int]]")
        assert "bad-annotation" in sink.codes()

    def test_none_annotation_is_void(self):
        parsed, _ = parse_ann("None")
        assert parsed.is_void

    def test_unparseable_string_reported(self):
        _, sink = parse_ann('"not a type!!"')
        assert "bad-annotation" in sink.codes()

    def test_class_reference(self):
        parsed, _ = parse_ann("Approx[Matrix]")
        assert parsed.is_reference and parsed.name == "Matrix"
        assert parsed.qualifier is APPROX


SOURCE = """
from repro import Approx, Context, approximable, endorse

@approximable
class Grid:
    cells: Context[list[float]]
    hits: Approx[int]

    def __init__(self, n: int) -> None:
        data: Context[list[float]] = [0.0] * n
        self.cells = data
        self.hits = 0

    def probe(self) -> Context[float]:
        return self.cells[0]

    def probe_APPROX(self) -> Approx[float]:
        return self.cells[0]

class Plain(Grid):
    extra: int

def helper(x: Approx[float]) -> Approx[float]:
    return x * 2.0
"""


class TestCollection:
    @pytest.fixture(scope="class")
    def decls(self) -> ProgramDeclarations:
        sink = DiagnosticSink()
        return collect_declarations({"m": ast.parse(SOURCE)}, sink)

    def test_classes_collected(self, decls):
        grid = decls.lookup_class("Grid")
        assert grid is not None and grid.approximable
        assert set(grid.fields) == {"cells", "hits"}
        assert grid.fields["hits"].qualifier is APPROX

    def test_subclass_chain(self, decls):
        assert decls.subclasses == {"Plain": "Grid"}
        # FType walks the chain.
        assert decls.field_type("Plain", "cells") is not None
        assert decls.field_type("Plain", "extra").is_primitive

    def test_method_sig_lookup(self, decls):
        sig = decls.method_sig("Plain", "probe")
        assert sig is not None
        assert sig.owner == "Grid"

    def test_approx_variant_detection(self, decls):
        assert decls.class_has_approx_variant("Grid", "probe")
        assert not decls.class_has_approx_variant("Grid", "__init__")

    def test_variant_receiver_qualifiers(self, decls):
        grid = decls.lookup_class("Grid")
        # probe has a variant: its body is checked precisely; the
        # variant approximately; __init__ (no variant) contextually.
        assert grid.methods["probe"].receiver_qualifier is PRECISE
        assert grid.methods["probe_APPROX"].receiver_qualifier is APPROX
        assert grid.methods["__init__"].receiver_qualifier is CONTEXT

    def test_functions_collected(self, decls):
        helper = decls.lookup_function("helper")
        assert helper is not None
        assert helper.params[0][1].qualifier is APPROX
        assert helper.returns.qualifier is APPROX

    def test_field_specs_for_layout(self, decls):
        specs = dict(
            (name, (kind, qual))
            for name, kind, qual in decls.lookup_class("Grid").field_specs()
        )
        # The array-typed field is a *pointer* and pointers are never
        # approximated (paper Section 5.1); the context qualifier lives
        # on the elements, whose storage is the array's own.
        assert specs["cells"] == ("ref", "precise")
        assert specs["hits"] == ("int", "approx")
