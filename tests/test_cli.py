"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main

GOOD = """
from repro import Approx, endorse

def total(n: int) -> float:
    data: list[Approx[float]] = [0.0] * n
    for i in range(n):
        data[i] = 1.0 * i
    acc: Approx[float] = 0.0
    for i in range(n):
        acc = acc + data[i]
    return endorse(acc)
"""

BAD = """
from repro import Approx

def leak() -> float:
    a: Approx[float] = 1.0
    return a
"""


@pytest.fixture
def good_file(tmp_path):
    path = tmp_path / "good.py"
    path.write_text(GOOD)
    return str(path)


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(BAD)
    return str(path)


class TestCheckCommand:
    def test_accepts_well_typed(self, good_file, capsys):
        assert main(["check", good_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_rejects_ill_typed(self, bad_file, capsys):
        assert main(["check", bad_file]) == 1
        out = capsys.readouterr().out
        assert "return-type" in out or "flow" in out
        assert "FAILED" in out

    def test_missing_file(self, capsys):
        assert main(["check", "/nonexistent/nowhere.py"]) == 1


class TestRunCommand:
    def test_runs_entry(self, good_file, capsys):
        code = main(
            ["run", good_file, "--entry", "total", "--config", "baseline", "--args", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "output   : 45.0" in out
        assert "energy" in out

    def test_reports_stats(self, good_file, capsys):
        main(["run", good_file, "--entry", "total", "--config", "mild", "--args", "16"])
        out = capsys.readouterr().out
        assert "approx" in out
        assert "endorsements: 1" in out

    def test_mobile_split(self, good_file, capsys):
        main(
            ["run", good_file, "--entry", "total", "--config", "mild", "--mobile",
             "--args", "8"]
        )
        assert "mobile split" in capsys.readouterr().out

    def test_run_rejects_ill_typed(self, bad_file, capsys):
        assert main(["run", bad_file, "--entry", "leak"]) == 1

    def test_float_argument_parsing(self, tmp_path, capsys):
        path = tmp_path / "f.py"
        path.write_text("def double(x: float) -> float:\n    return x * 2.0\n")
        assert main(["run", str(path), "--entry", "double", "--config", "baseline",
                     "--args", "1.5"]) == 0
        assert "3.0" in capsys.readouterr().out


class TestCensusCommand:
    def test_counts(self, good_file, capsys):
        assert main(["census", good_file]) == 0
        out = capsys.readouterr().out
        assert "declarations" in out
        assert "endorsement sites  : 1" in out


class TestTraceCommand:
    def test_traces_montecarlo(self, capsys):
        code = main(["trace", "montecarlo", "--level", "aggressive"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MonteCarlo @ aggressive" in out
        assert "events" in out
        assert "faults" in out

    def test_writes_schema_valid_jsonl(self, tmp_path, capsys):
        from repro.observability import read_trace

        path = str(tmp_path / "trace.jsonl")
        code = main(
            ["trace", "montecarlo", "--level", "aggressive", "--trace-out", path]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        trace = read_trace(path)  # read_trace validates every event line
        assert trace.meta["fault_seeds"] == [1]
        assert trace.events
        assert trace.summary is not None

    def test_trace_filter_restricts_file(self, tmp_path, capsys):
        from repro.observability import read_trace

        path = str(tmp_path / "filtered.jsonl")
        code = main(
            ["trace", "montecarlo", "--level", "aggressive", "--trace-out", path,
             "--trace-filter", "component=fpu"]
        )
        assert code == 0
        trace = read_trace(path)
        assert trace.events
        assert all(event["component"] == "fpu" for event in trace.events)

    def test_unknown_app_rejected(self, capsys):
        assert main(["trace", "quake3"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_filter_rejected(self, capsys):
        assert main(["trace", "montecarlo", "--trace-filter", "seed=3"]) == 1
        assert "trace filter" in capsys.readouterr().err

    @pytest.mark.slow
    def test_jobs_matches_serial_file(self, tmp_path, capsys):
        serial = str(tmp_path / "serial.jsonl")
        parallel = str(tmp_path / "parallel.jsonl")
        args = ["trace", "montecarlo", "--level", "medium", "--runs", "4"]
        assert main(args + ["--trace-out", serial]) == 0
        assert main(args + ["--trace-out", parallel, "--jobs", "4"]) == 0
        capsys.readouterr()
        with open(serial) as a, open(parallel) as b:
            assert a.read() == b.read()


class TestTraceReportCommand:
    def test_reports_over_written_trace(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        assert main(
            ["trace", "montecarlo", "--level", "aggressive", "--trace-out", path]
        ) == 0
        capsys.readouterr()
        assert main(["trace-report", path]) == 0
        out = capsys.readouterr().out
        assert "MonteCarlo" in out
        assert "events" in out

    def test_rejects_corrupt_file(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n")
        assert main(["trace-report", str(path)]) == 1
        assert "not JSON" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["trace-report", "/nonexistent/trace.jsonl"]) == 1
        assert "error" in capsys.readouterr().err


class TestExperimentsCommand:
    @pytest.fixture(autouse=True)
    def isolated_cwd(self, tmp_path, monkeypatch):
        # `experiments` keeps a run store under ./.repro-cache by
        # default; run from a scratch directory so tests never write
        # into the repository.
        monkeypatch.chdir(tmp_path)

    def test_table2(self, capsys):
        assert main(["experiments", "table2"]) == 0
        assert "10^-5" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "figure99"])

    def test_jobs_flag_accepted(self, capsys):
        # table2 is pure formatting: --jobs falls back to serial with a note.
        assert main(["experiments", "table2", "--jobs", "4"]) == 0
        out = capsys.readouterr().out
        assert "does not support --jobs" in out
        assert "10^-5" in out

    def test_batch_flag_accepted(self, capsys):
        # table2 runs nothing: --batch falls back to unbatched with a note.
        assert main(["experiments", "table2", "--batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "does not support --batch" in out

    def test_batch_flag_rejects_garbage(self):
        with pytest.raises(SystemExit):
            main(["experiments", "figure5", "--batch", "many"])

    def test_jobs_flag_rejects_garbage(self):
        with pytest.raises(SystemExit):
            main(["experiments", "figure3", "--jobs", "many"])

    @pytest.mark.slow
    def test_figure3_parallel(self, capsys):
        assert main(["experiments", "figure3", "--jobs", "2"]) == 0
        assert "fraction approximate" in capsys.readouterr().out

    def test_recover_flag_defaults_to_selective(self, capsys):
        # table2 runs no simulations: --recover falls back with a note,
        # which also proves the bare flag parses as mode "selective".
        assert main(["experiments", "table2", "--recover"]) == 0
        assert "does not support --recover" in capsys.readouterr().out

    def test_recover_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            main(["experiments", "figure5", "--recover", "optimistic"])

    def test_recover_excludes_jobs(self, capsys):
        assert main(["experiments", "figure5", "--recover", "--jobs", "2"]) == 1
        assert "--jobs" in capsys.readouterr().err

    def test_recover_excludes_routing(self, capsys):
        assert (
            main(["experiments", "figure5", "--recover", "--via-service", "h:1"]) == 1
        )
        err = capsys.readouterr().err
        assert "--recover" in err and "repro submit --recover" in err
        assert main(["experiments", "figure5", "--recover", "--via-fleet", "h:1"]) == 1

    def test_recover_composes_with_batch(self, capsys):
        # Resolver accepts the pair; table2 then notes both fall away.
        assert main(["experiments", "table2", "--recover", "--batch", "4"]) == 0


class TestSubmitRecoverCLI:
    def test_recover_excludes_qos_budget(self, capsys):
        code = main(["submit", "fft", "--recover", "--qos-budget", "0.05"])
        assert code == 1
        assert "--recover and --qos-budget" in capsys.readouterr().err

    def test_recover_excludes_trace_summary(self, capsys):
        code = main(["submit", "fft", "--recover", "precise", "--trace-summary"])
        assert code == 1
        assert "--trace-summary" in capsys.readouterr().err

    def test_recover_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            main(["submit", "fft", "--recover", "hopeful"])


class TestRecoverCommand:
    def test_frontier_json_payload(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["recover", "frontier", "montecarlo", "--runs", "1", "--no-cache",
             "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "selective"
        assert payload["runs"] == 1
        points = payload["apps"]["MonteCarlo"]
        assert [point["config"] for point in points] == [
            "mild", "medium", "aggressive"
        ]
        for point in points:
            assert point["unrecovered"] == 0

    def test_frontier_text_table(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert (
            main(["recover", "frontier", "montecarlo", "--runs", "1", "--no-cache"])
            == 0
        )
        out = capsys.readouterr().out
        assert "MonteCarlo" in out and "recQoS" in out

    def test_unknown_app_rejected(self, capsys):
        assert main(["recover", "frontier", "nosuchapp"]) == 1
        assert "nosuchapp" in capsys.readouterr().err

    def test_nonpositive_runs_rejected(self, capsys):
        assert main(["recover", "frontier", "fft", "--runs", "0"]) == 1
        assert "--runs" in capsys.readouterr().err

    def test_unknown_action_rejected(self):
        with pytest.raises(SystemExit):
            main(["recover", "spectrum"])


class TestServeCLI:
    def test_dump_config_prints_effective_json(self, capsys):
        assert main(["serve", "--dump-config", "--workers", "3", "--port", "0"]) == 0
        config = json.loads(capsys.readouterr().out)
        assert config["workers"] == 3
        assert config["port"] == 0
        assert config["warm_apps"] == ["all"]

    def test_dump_config_reflects_no_cache(self, capsys):
        assert main(["serve", "--dump-config", "--no-cache"]) == 0
        assert json.loads(capsys.readouterr().out)["cache_dir"] is None

    def test_invalid_knobs_fail_at_boot(self, capsys):
        assert main(["serve", "--dump-config", "--workers", "0"]) == 1
        assert "workers" in capsys.readouterr().err

    def test_submit_unreachable_daemon_is_an_error(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        assert main(["submit", "fft", "--port", str(free_port)]) == 1
        assert "repro serve" in capsys.readouterr().err

    def test_via_service_rejects_bad_address(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["experiments", "table2", "--via-service", "nowhere"]) == 1
        assert "--via-service" in capsys.readouterr().err


class TestCheckJson:
    def test_good_file_json_payload(self, good_file, capsys):
        assert main(["check", good_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["diagnostics"] == []
        assert payload["path"] == good_file

    def test_bad_file_json_payload_and_nonzero_exit(self, bad_file, capsys):
        assert main(["check", bad_file, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        diagnostic = payload["diagnostics"][0]
        assert diagnostic["severity"] == "error"
        assert {"code", "message", "line", "column", "module"} <= set(diagnostic)

    def test_json_is_canonical(self, bad_file, capsys):
        assert main(["check", bad_file, "--format", "json"]) == 1
        first = capsys.readouterr().out
        assert main(["check", bad_file, "--format", "json"]) == 1
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert json.dumps(payload, indent=2, sort_keys=True) + "\n" == first


class TestLintCommand:
    def test_lints_single_app_text(self, capsys):
        assert main(["lint", "montecarlo", "--no-suggest"]) == 0
        out = capsys.readouterr().out
        assert "MonteCarlo" in out
        assert "AF001" in out

    def test_suggestions_included_by_default(self, capsys):
        assert main(["lint", "montecarlo"]) == 0
        assert "validated relaxation" in capsys.readouterr().out

    def test_json_single_app_is_payload_object(self, capsys):
        assert main(["lint", "montecarlo", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "MonteCarlo"
        assert isinstance(payload["findings"], list)
        assert isinstance(payload["suggestions"], list)

    def test_json_multiple_apps_wrapped(self, capsys):
        assert main(["lint", "sor", "fft", "--format", "json", "--no-suggest"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["app"] for p in payload["apps"]] == ["SOR", "FFT"]

    def test_unknown_app_rejected(self, capsys):
        assert main(["lint", "nosuchapp"]) == 1
        assert "nosuchapp" in capsys.readouterr().err

    def test_baseline_roundtrip_and_drift(self, tmp_path, capsys):
        baseline_dir = str(tmp_path / "baselines")
        assert main(
            ["lint", "montecarlo", "--baseline-dir", baseline_dir, "--write-baselines"]
        ) == 0
        capsys.readouterr()
        assert main(["lint", "montecarlo", "--baseline-dir", baseline_dir]) == 0
        assert "ok" in capsys.readouterr().out
        # Corrupt the baseline: the compare must fail loudly.
        path = tmp_path / "baselines" / "montecarlo.json"
        path.write_text(path.read_text().replace("AF001", "AF999"))
        assert main(["lint", "montecarlo", "--baseline-dir", baseline_dir]) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_missing_baseline_fails(self, tmp_path, capsys):
        assert main(["lint", "montecarlo", "--baseline-dir", str(tmp_path / "nope")]) == 1
        assert "MISSING" in capsys.readouterr().out

    def test_write_baselines_requires_dir(self, capsys):
        assert main(["lint", "montecarlo", "--write-baselines"]) == 1
        assert "--baseline-dir" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_reliability_text_lists_levels(self, capsys):
        assert main(["analyze", "reliability", "montecarlo"]) == 0
        out = capsys.readouterr().out
        for level in ("mild", "medium", "aggressive"):
            assert level in out

    def test_level_filter(self, capsys):
        assert main(["analyze", "reliability", "montecarlo", "--level", "mild"]) == 0
        out = capsys.readouterr().out
        assert "mild" in out
        assert "aggressive" not in out

    def test_json_payload_shape(self, capsys):
        assert main(
            ["analyze", "reliability", "montecarlo", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "MonteCarlo"
        levels = [b["level"] for b in payload["bounds"]]
        assert levels == ["mild", "medium", "aggressive"]
        for bound in payload["bounds"]:
            assert 0.0 < bound["bound"] <= 1.0

    def test_verify_reports_soundness(self, capsys):
        assert main(["analyze", "reliability", "montecarlo", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "soundness" in out
        assert "OK" in out
        assert "VIOLATION" not in out

    def test_unknown_app_rejected(self, capsys):
        assert main(["analyze", "reliability", "nosuchapp"]) == 1
        assert "nosuchapp" in capsys.readouterr().err


class TestFailOn:
    def test_lint_fail_on_warning_trips_on_warnings(self, capsys):
        # FFT carries warning-severity findings (AF005 wide endorsement).
        assert main(["lint", "fft", "--no-suggest", "--fail-on", "warning"]) == 2
        capsys.readouterr()

    def test_lint_fail_on_warning_clean_app_passes(self, capsys):
        assert main(
            ["lint", "montecarlo", "--no-suggest", "--fail-on", "warning"]
        ) == 0
        capsys.readouterr()

    def test_lint_fail_on_error_ignores_warnings(self, capsys):
        # The lint catalog only emits info/warning; error never trips.
        assert main(["lint", "fft", "--no-suggest", "--fail-on", "error"]) == 0
        capsys.readouterr()

    def test_reliability_fail_on_trips_on_saturated_bound(self, capsys):
        assert main(
            [
                "analyze", "reliability", "fft",
                "--level", "aggressive", "--fail-on", "warning",
            ]
        ) == 2
        assert "saturated" in capsys.readouterr().out

    def test_profiled_residency_clears_the_saturation(self, capsys):
        assert main(
            [
                "analyze", "reliability", "fft",
                "--level", "aggressive", "--fail-on", "warning",
                "--residency", "profiled",
            ]
        ) == 0
        assert "saturated" not in capsys.readouterr().out

    def test_placement_fail_on_trips_on_infeasible_plan(self, capsys):
        # ZXing's medium/aggressive approximateness is Context-seeded and
        # cannot be demoted away: the plans are honestly infeasible.
        assert main(["analyze", "placement", "zxing", "--fail-on", "warning"]) == 2
        assert "INFEASIBLE" in capsys.readouterr().out


class TestPlacementCommand:
    def test_text_lists_all_levels(self, capsys):
        assert main(["analyze", "placement", "montecarlo"]) == 0
        out = capsys.readouterr().out
        assert "MonteCarlo: data-placement plans" in out
        for level in ("mild", "medium", "aggressive"):
            assert level in out
        assert "all-precise-dram" in out

    def test_level_filter(self, capsys):
        assert main(["analyze", "placement", "montecarlo", "--level", "mild"]) == 0
        out = capsys.readouterr().out
        assert "mild" in out
        assert "aggressive" not in out

    def test_json_payload_shape(self, capsys):
        assert main(["analyze", "placement", "montecarlo", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "MonteCarlo"
        assert [p["level"] for p in payload["plans"]] == [
            "mild", "medium", "aggressive",
        ]
        for plan in payload["plans"]:
            assert plan["feasible"] is True
            assert plan["validated"] is True
            assert 0.0 <= plan["bound_after"] <= plan["bound_before"] <= 1.0
            assert {d["action"] for d in plan["decisions"]} <= {"keep", "demote"}

    def test_baseline_roundtrip_and_drift(self, tmp_path, capsys):
        baseline_dir = str(tmp_path / "placement")
        assert main(
            [
                "analyze", "placement", "montecarlo",
                "--baseline-dir", baseline_dir, "--write-baselines",
            ]
        ) == 0
        capsys.readouterr()
        assert main(
            ["analyze", "placement", "montecarlo", "--baseline-dir", baseline_dir]
        ) == 0
        assert "ok" in capsys.readouterr().out
        path = tmp_path / "placement" / "montecarlo.json"
        path.write_text(path.read_text().replace('"keep"', '"drop"'))
        assert main(
            ["analyze", "placement", "montecarlo", "--baseline-dir", baseline_dir]
        ) == 1
        assert "DRIFT" in capsys.readouterr().out

    def test_write_baselines_requires_dir(self, capsys):
        assert main(["analyze", "placement", "montecarlo", "--write-baselines"]) == 1
        assert "--baseline-dir" in capsys.readouterr().err

    def test_unknown_app_rejected(self, capsys):
        assert main(["analyze", "placement", "nosuchapp"]) == 1
        assert "nosuchapp" in capsys.readouterr().err

    def test_verify_accepts_and_beats_all_precise_dram(self, capsys):
        # The cheapest bundled app keeps this live-simulation smoke fast.
        assert main(["analyze", "placement", "imagej", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "dynamic placement verification" in out
        assert "accepted" in out
        assert "beats all-precise-dram" in out
        assert "FAILED" not in out
