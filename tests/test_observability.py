"""Unit tests for the observability layer (events, sinks, metrics, tracer).

End-to-end determinism of traced runs lives in
``test_trace_determinism.py``; this file covers the building blocks and
the schema contract that OBSERVABILITY.md documents.
"""

import io
import json

import pytest

from repro.core.pipeline import compile_program
from repro.hardware import AGGRESSIVE, BASELINE
from repro.hardware.config import HardwareConfig
from repro.observability import (
    COMPONENTS,
    EVENT_KINDS,
    SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullSink,
    TraceEvent,
    TraceFilter,
    Tracer,
    read_trace,
    summarize,
    validate_event_dict,
    write_trace,
)
from repro.runtime import Simulator

SOURCE = """
from repro import Approx, endorse

def total(n: int) -> float:
    data: list[Approx[float]] = [0.0] * n
    for i in range(n):
        data[i] = 1.0 * i
    acc: Approx[float] = 0.0
    for i in range(n):
        acc = acc + data[i]
    return endorse(acc)
"""


def _event(**overrides) -> TraceEvent:
    base = dict(
        seq=0,
        cycle=12,
        component="sram",
        kind="sram.read_upset",
        identity="local:float",
        fault_seed=1,
        bits=(3, 17),
        before=1.5,
        after=-2.5,
    )
    base.update(overrides)
    return TraceEvent(**base)


class TestTraceEvent:
    def test_roundtrips_through_json(self):
        event = _event(extra={"mode": "random"})
        decoded = TraceEvent.from_dict(json.loads(event.to_json()))
        assert decoded == event

    def test_wire_form_is_schema_valid(self):
        validate_event_dict(_event().to_dict())

    def test_canonical_json_is_sorted_and_compact(self):
        line = _event().to_json()
        keys = list(json.loads(line))
        assert keys == sorted(keys)
        assert ": " not in line

    def test_nonfinite_floats_encode_as_strings(self):
        data = _event(before=float("nan"), after=float("inf")).to_dict()
        assert data["before"] == "NaN"
        assert data["after"] == "Infinity"
        json.dumps(data, allow_nan=False)  # representable without NaN literals

    def test_sort_key_orders_by_seed_then_seq(self):
        events = [
            _event(fault_seed=2, seq=0),
            _event(fault_seed=1, seq=5),
            _event(fault_seed=1, seq=2),
        ]
        ordered = sorted(events, key=lambda e: e.sort_key)
        assert [(e.fault_seed, e.seq) for e in ordered] == [(1, 2), (1, 5), (2, 0)]

    def test_every_kind_maps_to_a_known_component(self):
        assert set(EVENT_KINDS.values()) <= set(COMPONENTS)


class TestValidation:
    def test_rejects_missing_fields(self):
        data = _event().to_dict()
        del data["cycle"]
        with pytest.raises(ValueError, match="missing fields: cycle"):
            validate_event_dict(data)

    def test_rejects_unknown_component(self):
        with pytest.raises(ValueError, match="unknown component"):
            validate_event_dict({**_event().to_dict(), "component": "gpu"})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            validate_event_dict({**_event().to_dict(), "kind": "sram.melted"})

    def test_rejects_component_kind_mismatch(self):
        with pytest.raises(ValueError, match="belongs to component"):
            validate_event_dict({**_event().to_dict(), "component": "dram"})

    def test_rejects_wrong_schema_version(self):
        with pytest.raises(ValueError, match="schema version"):
            validate_event_dict({**_event().to_dict(), "v": SCHEMA_VERSION + 1})

    def test_rejects_out_of_range_bits(self):
        with pytest.raises(ValueError, match="bit position"):
            validate_event_dict({**_event().to_dict(), "bits": [64]})


class TestSinks:
    def test_memory_sink_keeps_emission_order(self):
        sink = MemorySink()
        for seq in range(5):
            sink.emit(_event(seq=seq))
        assert [event.seq for event in sink.events()] == [0, 1, 2, 3, 4]
        assert sink.dropped == 0

    def test_memory_sink_ring_drops_oldest(self):
        sink = MemorySink(capacity=3)
        for seq in range(5):
            sink.emit(_event(seq=seq))
        assert [event.seq for event in sink.events()] == [2, 3, 4]
        assert sink.dropped == 2

    def test_memory_sink_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            MemorySink(capacity=0)

    def test_jsonl_sink_writes_one_line_per_event(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.emit(_event(seq=0))
        sink.emit(_event(seq=1))
        sink.close()
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["seq"] == 1

    def test_jsonl_sink_owns_path_handles(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlSink(path) as sink:
            sink.emit(_event())
        with open(path) as handle:
            validate_event_dict(json.loads(handle.read()))

    def test_null_sink_swallows(self):
        NullSink().emit(_event())  # must not raise


class TestTraceFilter:
    def test_empty_accepts_everything(self):
        filt = TraceFilter.parse([])
        assert filt.is_empty
        assert filt.accepts("sram", "sram.read_upset")

    def test_component_term(self):
        filt = TraceFilter.parse(["component=sram,dram"])
        assert filt.accepts("sram", "sram.read_upset")
        assert filt.accepts("dram", "dram.decay")
        assert not filt.accepts("fpu", "fpu.truncation")

    def test_kind_term(self):
        filt = TraceFilter.parse(["kind=dram.decay"])
        assert filt.accepts("dram", "dram.decay")
        assert not filt.accepts("dram", "energy.alloc")

    def test_terms_and_together(self):
        filt = TraceFilter.parse(["component=sram", "kind=sram.write_failure"])
        assert filt.accepts("sram", "sram.write_failure")
        assert not filt.accepts("sram", "sram.read_upset")

    @pytest.mark.parametrize("term", ["component", "=x", "seed=3", "component="])
    def test_rejects_malformed_terms(self, term):
        with pytest.raises(ValueError, match="trace filter"):
            TraceFilter.parse([term])


class TestMetricsRegistry:
    def test_counters_autocreate_and_accumulate(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        assert registry.counter_value("a") == 5
        assert registry.counter_value("never") == 0

    def test_histograms_bucket_exact_values(self):
        registry = MetricsRegistry()
        for bit in (3, 3, 17):
            registry.histogram("bits").observe(bit)
        assert registry.histogram("bits").buckets == {3: 2, 17: 1}
        assert registry.histogram("bits").total == 3

    def test_as_dict_roundtrips(self):
        registry = MetricsRegistry()
        registry.counter("faults").inc(2)
        registry.histogram("bits").observe(5, 3)
        assert MetricsRegistry.from_dict(registry.as_dict()) == registry

    def test_as_dict_survives_json(self):
        registry = MetricsRegistry()
        registry.histogram("bits").observe(5)
        rewired = MetricsRegistry.from_dict(json.loads(json.dumps(registry.as_dict())))
        assert rewired == registry


class TestTracer:
    def test_emit_updates_metrics_and_sink(self):
        tracer = Tracer()
        tracer.emit("sram.read_upset", "local:int", bits=(1, 1, 9), before=3, after=7)
        assert tracer.metrics.counter_value("sram.read_upset") == 1
        assert tracer.metrics.histogram("bitflip.position.sram").buckets == {1: 2, 9: 1}
        [event] = tracer.sink.events()
        assert event.component == "sram"
        assert event.bits == (1, 1, 9)

    def test_filter_gates_sink_not_metrics(self):
        tracer = Tracer(trace_filter=["component=dram"])
        tracer.emit("sram.read_upset", "local:int")
        tracer.emit("dram.decay", "array#0[3]")
        assert tracer.metrics.counter_value("sram.read_upset") == 1
        assert [event.kind for event in tracer.sink.events()] == ["dram.decay"]

    def test_seq_counts_all_emissions(self):
        tracer = Tracer(trace_filter=["kind=dram.decay"])
        tracer.emit("sram.read_upset", "local:int")
        tracer.emit("dram.decay", "array#0[0]")
        assert tracer.events_emitted == 2
        [event] = tracer.sink.events()
        assert event.seq == 1  # filtered emissions still consume seq numbers

    def test_attach_binds_clock_and_seed(self):
        class FakeClock:
            ticks = 42

        tracer = Tracer()
        tracer.attach(FakeClock(), fault_seed=9)
        tracer.emit("runtime.endorse", "endorse")
        [event] = tracer.sink.events()
        assert event.cycle == 42
        assert event.fault_seed == 9


class TestSimulatorWiring:
    """The tracer observes the simulation without perturbing it."""

    @pytest.fixture(scope="class")
    def program(self):
        return compile_program({"demo": SOURCE})

    def test_aggressive_run_emits_all_layers(self, program):
        tracer = Tracer()
        with Simulator(AGGRESSIVE, seed=1, tracer=tracer) as sim:
            program.call("demo", "total", 200)
        kinds = {event.kind for event in tracer.sink.events()}
        assert "energy.alloc" in kinds
        assert "energy.free" in kinds
        assert "runtime.endorse" in kinds
        assert kinds & {"sram.read_upset", "sram.write_failure", "fpu.timing_error"}
        assert tracer.metrics.counter_value("energy.sram.approx_bytes") > 0
        # Event counters agree with the RunStats fault totals.
        stats = sim.stats()
        assert tracer.metrics.counter_value("fpu.timing_error") == stats.fu_faults
        assert tracer.metrics.counter_value("runtime.endorse") == stats.endorsements

    def test_tracing_never_perturbs_the_run(self, program):
        with Simulator(AGGRESSIVE, seed=7) as sim:
            plain = program.call("demo", "total", 150)
        plain_stats = sim.stats()
        with Simulator(AGGRESSIVE, seed=7, tracer=Tracer()) as sim:
            traced = program.call("demo", "total", 150)
        assert traced == plain
        assert sim.stats() == plain_stats

    def test_baseline_run_emits_no_faults(self, program):
        tracer = Tracer()
        with Simulator(BASELINE, seed=1, tracer=tracer):
            program.call("demo", "total", 50)
        kinds = {event.kind for event in tracer.sink.events()}
        assert kinds <= {"energy.alloc", "energy.free", "runtime.endorse"}

    def test_events_are_schema_valid_and_seq_ordered(self, program):
        tracer = Tracer()
        with Simulator(AGGRESSIVE, seed=2, tracer=tracer):
            program.call("demo", "total", 120)
        events = tracer.sink.events()
        assert [event.seq for event in events] == list(range(len(events)))
        for event in events:
            validate_event_dict(json.loads(event.to_json()))


class TestTraceFileRoundtrip:
    @pytest.fixture(scope="class")
    def results(self):
        import dataclasses

        from repro.apps import app_by_name
        from repro.observability import traced_runs

        spec = dataclasses.replace(
            app_by_name("montecarlo"), name="MC@obs-test", default_args=(300, 0)
        )
        return traced_runs(spec, AGGRESSIVE, fault_seeds=(1, 2))

    def test_write_read_summarize(self, tmp_path, results):
        path = str(tmp_path / "trace.jsonl")
        written = write_trace(path, results)
        trace = read_trace(path)
        assert trace.meta["fault_seeds"] == [1, 2]
        assert len(trace.events) == written
        assert trace.summary is not None
        report = summarize(trace)
        assert "MC@obs-test" in report
        assert "faults/kop" in report or "events" in report

    def test_filtered_write_keeps_summary_unfiltered(self, tmp_path, results):
        path = str(tmp_path / "filtered.jsonl")
        write_trace(path, results, TraceFilter.parse(["component=energy"]))
        trace = read_trace(path)
        assert all(event["component"] == "energy" for event in trace.events)
        counters = trace.summary["metrics"]["counters"]
        assert any(not name.startswith("energy.") for name in counters if counters[name])

    def test_read_rejects_corrupt_event(self, tmp_path, results):
        path = str(tmp_path / "bad.jsonl")
        write_trace(path, results)
        with open(path) as handle:
            lines = handle.read().splitlines()
        bad = json.loads(lines[1])
        bad["component"] = "gpu"
        lines[1] = json.dumps(bad)
        path2 = str(tmp_path / "bad2.jsonl")
        with open(path2, "w") as handle:
            handle.write("\n".join(lines))
        with pytest.raises(ValueError, match="unknown component"):
            read_trace(path2)

    def test_read_requires_meta(self, tmp_path):
        path = str(tmp_path / "no_meta.jsonl")
        with open(path, "w") as handle:
            handle.write(_event().to_json() + "\n")
        with pytest.raises(ValueError, match="trace.meta"):
            read_trace(path)
