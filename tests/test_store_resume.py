"""Kill-and-resume determinism for store-backed campaigns.

The tentpole promise: a campaign interrupted partway through (SIGKILL,
no cleanup) resumes against the same cache directory and produces rows
bit-identical to an uninterrupted run — and the row values are the same
at ``--jobs 1`` and ``--jobs 4``, warm or cold.

The campaign runs in a real subprocess (its own process group, so the
kill also takes out the pool workers mid-write) over shrunken specs;
the parent polls the store's object count to time the kill near 50%.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

import repro

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method"),
]

#: 3 apps x 2 configs x 8 fault seeds = 48 QoS cells (+3 baseline
#: references) — long enough to interrupt reliably, small enough to
#: finish in seconds.
CAMPAIGN_SCRIPT = """
import dataclasses, json, sys

from repro import store as store_mod
from repro.apps import app_by_name
from repro.experiments.executor import Job, run_jobs
from repro.hardware.config import MEDIUM, MILD

SMALL = [
    dataclasses.replace(app_by_name("fft"), name="FFT@resume", default_args=(64, 0)),
    dataclasses.replace(app_by_name("sor"), name="SOR@resume", default_args=(12, 4, 0)),
    dataclasses.replace(
        app_by_name("montecarlo"), name="MC@resume", default_args=(2000, 0)
    ),
]

def main(cache_dir, jobs):
    store_mod.configure(cache_dir)
    grid = [
        Job(spec=spec, config=config, fault_seed=fault_seed)
        for spec in SMALL
        for config in (MILD, MEDIUM)
        for fault_seed in range(1, 9)
    ]
    rows = run_jobs(grid, workers=jobs)
    print(json.dumps(rows))

if __name__ == "__main__":
    main(sys.argv[1], int(sys.argv[2]))
"""

TOTAL_QOS_CELLS = 3 * 2 * 8


def _script_path(tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("script") / "campaign.py"
    path.write_text(CAMPAIGN_SCRIPT)
    return str(path)


def _env():
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def _run_campaign(script: str, cache_dir: str, jobs: int):
    completed = subprocess.run(
        [sys.executable, script, cache_dir, str(jobs)],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout)


def _entry_count(cache_dir: str) -> int:
    objects = os.path.join(cache_dir, "objects")
    if not os.path.isdir(objects):
        return 0
    return sum(
        1
        for shard in os.listdir(objects)
        if os.path.isdir(os.path.join(objects, shard))
        for name in os.listdir(os.path.join(objects, shard))
        if name.endswith(".json")
    )


@pytest.fixture(scope="module")
def script(tmp_path_factory):
    return _script_path(tmp_path_factory)


@pytest.fixture(scope="module")
def expected_rows(script, tmp_path_factory):
    """Ground truth: one uninterrupted cold campaign at --jobs 4."""
    cache = str(tmp_path_factory.mktemp("cold") / "cache")
    return _run_campaign(script, cache, jobs=4)


class TestKillAndResume:
    def test_sigkill_midway_then_resume_bit_identical(
        self, script, expected_rows, tmp_path
    ):
        cache = str(tmp_path / "cache")
        process = subprocess.Popen(
            [sys.executable, script, cache, "4"],
            env=_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,  # own group: the kill reaps workers too
        )
        deadline = time.monotonic() + 300
        try:
            # Kill near 50% completion — mid-campaign, workers mid-write.
            while process.poll() is None and time.monotonic() < deadline:
                if _entry_count(cache) >= TOTAL_QOS_CELLS // 2:
                    os.killpg(process.pid, signal.SIGKILL)
                    break
                time.sleep(0.02)
        finally:
            process.wait(timeout=60)
        assert process.returncode != 0, "campaign finished before the kill landed"

        survivors = _entry_count(cache)
        assert survivors >= TOTAL_QOS_CELLS // 2  # completed cells persisted

        resumed = _run_campaign(script, cache, jobs=4)
        assert resumed == expected_rows
        # The resumed run only simulated the missing cells; everything
        # that survived the kill was reused, not recomputed.
        assert _entry_count(cache) >= survivors

    def test_warm_rerun_is_identical(self, script, expected_rows, tmp_path_factory):
        cache = str(tmp_path_factory.mktemp("warm") / "cache")
        cold = _run_campaign(script, cache, jobs=4)
        warm = _run_campaign(script, cache, jobs=4)
        assert cold == expected_rows
        assert warm == expected_rows

    def test_jobs_1_matches_jobs_4(self, script, expected_rows, tmp_path):
        cache = str(tmp_path / "cache")
        serial = _run_campaign(script, cache, jobs=1)
        assert serial == expected_rows

    def test_serial_resume_of_parallel_remnant(self, script, expected_rows, tmp_path):
        # A store half-filled by a parallel campaign must serve a serial
        # one identically (and vice versa — the key has no job count).
        cache = str(tmp_path / "cache")
        _run_campaign(script, cache, jobs=4)
        serial_warm = _run_campaign(script, cache, jobs=1)
        assert serial_warm == expected_rows
