"""Tests for qualified types and their subtyping (paper Sections 2.1, 2.5)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.qualifiers import APPROX, CONTEXT, LOST, PRECISE, TOP, Qualifier
from repro.core.types import (
    VOID,
    adapt_type,
    array_of,
    contains_context,
    contains_lost,
    is_subtype,
    primitive,
    reference,
    type_lub,
)

qualifiers = st.sampled_from(list(Qualifier))


class TestPrimitiveSubtyping:
    def test_precise_below_approx_for_primitives(self):
        # The key asymmetric rule: precise int <: approx int.
        assert is_subtype(primitive("int", PRECISE), primitive("int", APPROX))
        assert is_subtype(primitive("float", PRECISE), primitive("float", APPROX))

    def test_approx_not_below_precise(self):
        assert not is_subtype(primitive("int", APPROX), primitive("int", PRECISE))

    def test_everything_below_top_primitive(self):
        for q in (PRECISE, APPROX):
            assert is_subtype(primitive("float", q), primitive("float", TOP))

    def test_int_widens_to_float(self):
        assert is_subtype(primitive("int"), primitive("float"))
        assert is_subtype(primitive("int", PRECISE), primitive("float", APPROX))
        assert not is_subtype(primitive("float"), primitive("int"))

    def test_bool_does_not_widen(self):
        assert not is_subtype(primitive("bool"), primitive("int"))

    @given(qualifiers, qualifiers)
    def test_primitive_reflexive_per_qualifier(self, a, b):
        sub = primitive("int", a)
        sup = primitive("int", b)
        if a is b:
            assert is_subtype(sub, sup)


class TestReferenceSubtyping:
    def test_precise_class_not_below_approx_class(self):
        # Mutable-reference unsoundness (paper Section 2.5): no
        # precise-to-approx subtyping for classes.
        assert not is_subtype(reference("C", PRECISE), reference("C", APPROX))
        assert not is_subtype(reference("C", APPROX), reference("C", PRECISE))

    def test_class_below_top_class(self):
        assert is_subtype(reference("C", PRECISE), reference("C", TOP))
        assert is_subtype(reference("C", APPROX), reference("C", TOP))

    def test_subclassing(self):
        subclasses = {"Sub": "Base"}
        assert is_subtype(reference("Sub"), reference("Base"), subclasses)
        assert not is_subtype(reference("Base"), reference("Sub"), subclasses)

    def test_everything_below_object(self):
        assert is_subtype(reference("C"), reference("object"))

    def test_transitive_subclassing(self):
        subclasses = {"C": "B", "B": "A"}
        assert is_subtype(reference("C"), reference("A"), subclasses)


class TestArraySubtyping:
    def test_arrays_invariant_in_elements(self):
        precise_elems = array_of(primitive("float", PRECISE))
        approx_elems = array_of(primitive("float", APPROX))
        assert not is_subtype(precise_elems, approx_elems)
        assert not is_subtype(approx_elems, precise_elems)

    def test_array_reflexive(self):
        arr = array_of(primitive("float", APPROX))
        assert is_subtype(arr, arr)


class TestAdaptType:
    def test_context_field_through_approx_receiver(self):
        field = primitive("int", CONTEXT)
        assert adapt_type(APPROX, field).qualifier is APPROX

    def test_context_field_through_precise_receiver(self):
        field = primitive("int", CONTEXT)
        assert adapt_type(PRECISE, field).qualifier is PRECISE

    def test_context_field_through_top_is_lost(self):
        field = primitive("int", CONTEXT)
        adapted = adapt_type(TOP, field)
        assert adapted.qualifier is LOST
        assert contains_lost(adapted)

    def test_adapts_array_elements(self):
        field = array_of(primitive("float", CONTEXT))
        adapted = adapt_type(APPROX, field)
        assert adapted.element.qualifier is APPROX

    def test_approx_field_unchanged_by_receiver(self):
        field = primitive("int", APPROX)
        assert adapt_type(PRECISE, field).qualifier is APPROX

    def test_contains_context(self):
        assert contains_context(primitive("int", CONTEXT))
        assert contains_context(array_of(primitive("int", CONTEXT)))
        assert not contains_context(primitive("int", APPROX))


class TestLubAndMisc:
    def test_lub_of_precise_and_approx_primitive(self):
        joined = type_lub(primitive("int", PRECISE), primitive("int", APPROX))
        assert joined == primitive("int", APPROX)

    def test_lub_int_float(self):
        joined = type_lub(primitive("int"), primitive("float"))
        assert joined is not None
        assert joined.name == "float"

    def test_lub_unrelated_classes_is_none(self):
        assert type_lub(reference("A"), reference("B")) is None

    def test_void_only_matches_void(self):
        assert is_subtype(VOID, VOID)
        assert not is_subtype(VOID, primitive("int"))
        assert not is_subtype(primitive("int"), VOID)

    def test_endorsed(self):
        assert primitive("float", APPROX).endorsed().qualifier is PRECISE

    def test_str_forms(self):
        assert str(primitive("int", APPROX)) == "approx int"
        assert "[]" in str(array_of(primitive("float")))
        assert str(VOID) == "void"
