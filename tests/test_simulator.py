"""Tests for the Simulator context and runtime hooks."""

import math

import pytest

from repro.errors import NoActiveSimulationError
from repro.hardware import AGGRESSIVE, BASELINE, MEDIUM
from repro.memory.layout import FieldSpec
from repro.runtime import Simulator, current_simulator
from repro.runtime import hooks


class TestContextManagement:
    def test_enter_exit(self):
        assert current_simulator() is None
        with Simulator(BASELINE) as sim:
            assert current_simulator() is sim
        assert current_simulator() is None

    def test_nesting(self):
        with Simulator(BASELINE) as outer:
            with Simulator(MEDIUM) as inner:
                assert current_simulator() is inner
            assert current_simulator() is outer

    def test_hooks_raise_outside_context(self):
        with pytest.raises(NoActiveSimulationError):
            hooks._ej_binop("add", "int", False, 1, 2)

    def test_fallback_precise_mode(self):
        hooks.set_fallback_precise(True)
        try:
            assert hooks._ej_binop("add", "int", True, 1, 2) == 3
            assert hooks._ej_endorse(5) == 5
            assert list(hooks._ej_iter_array([1, 2])) == [1, 2]
            assert list(hooks._ej_range(3)) == [0, 1, 2]
        finally:
            hooks.set_fallback_precise(False)


class TestOperations:
    def test_binop_routing(self):
        with Simulator(BASELINE) as sim:
            assert sim.binop("add", "int", False, 2, 3) == 5
            assert sim.binop("add", "float", True, 0.5, 0.25) == 0.75
        stats = sim.stats()
        assert stats.int_ops_precise == 1
        assert stats.fp_ops_approx == 1
        assert stats.ticks == 2

    def test_unop(self):
        with Simulator(BASELINE) as sim:
            assert sim.unop("neg", "float", True, 2.0) == -2.0
            assert sim.unop("abs", "int", False, -2) == 2

    def test_convert_nan_to_int_is_zero(self):
        with Simulator(AGGRESSIVE) as sim:
            assert sim.convert("int", True, math.nan) == 0
            assert sim.convert("int", True, math.inf) == 0

    def test_convert_precise(self):
        with Simulator(BASELINE) as sim:
            assert sim.convert("int", False, 3.9) == 3
            assert sim.convert("float", False, 3) == 3.0

    def test_math_precise_and_approx(self):
        with Simulator(BASELINE) as sim:
            assert sim.math_call("sqrt", False, (4.0,)) == 2.0
            assert sim.math_call("sqrt", True, (4.0,)) == 2.0
        assert sim.stats().fp_ops_total == 2

    def test_approx_math_domain_error_is_nan(self):
        with Simulator(BASELINE) as sim:
            assert math.isnan(sim.math_call("sqrt", True, (-1.0,)))

    def test_precise_math_domain_error_raises(self):
        with Simulator(BASELINE) as sim:
            with pytest.raises(ValueError):
                sim.math_call("sqrt", False, (-1.0,))


class TestArrays:
    def test_array_lifecycle(self):
        with Simulator(BASELINE) as sim:
            # 100 floats = 400 bytes: spills well past the precise
            # header line, so most storage is approximate.
            backing = sim.new_array([0.0] * 100, "float", approximate=True)
            sim.array_store(backing, 3, 1.5)
            assert sim.array_load(backing, 3) == 1.5
        stats = sim.stats()
        assert stats.allocations == 1
        assert stats.dram_approx_byte_ticks > 0

    def test_small_approx_array_demoted_to_precise_line(self):
        # A 10-float array (40 bytes) fits in the free space of the
        # precise header line — it is demoted and saves no DRAM energy
        # (paper Section 4.1's layout rule).
        with Simulator(BASELINE) as sim:
            sim.new_array([0.0] * 10, "float", approximate=True)
        stats = sim.stats()
        assert stats.dram_approx_byte_ticks == 0
        assert stats.dram_precise_byte_ticks > 0

    def test_unregistered_list_passthrough(self):
        with Simulator(BASELINE) as sim:
            plain = [1, 2, 3]
            assert sim.array_load(plain, 1) == 2
            sim.array_store(plain, 1, 9)
            assert plain[1] == 9

    def test_precise_array_accounted_precise(self):
        with Simulator(BASELINE) as sim:
            sim.new_array([0] * 100, "int", approximate=False)
        stats = sim.stats()
        assert stats.dram_approx_byte_ticks == 0
        assert stats.dram_precise_byte_ticks > 0

    def test_decay_is_sticky(self):
        import dataclasses

        config = dataclasses.replace(AGGRESSIVE, seconds_per_tick=1.0, name="hot")
        with Simulator(config, seed=2) as sim:
            backing = sim.new_array([7] * 4, "int", approximate=True)
            sim.array_store(backing, 0, 7)
            sim.clock.advance(10_000)
            first = sim.array_load(backing, 0)
            # The stored word itself changed (sticky decay).
            assert backing[0] == first


class TestObjects:
    class Thing:
        def __init__(self):
            self.x = 0.0
            self.n = 0

    def _specs(self):
        return [FieldSpec("x", "float", True), FieldSpec("n", "int", False)]

    def test_object_registration_and_fields(self):
        with Simulator(BASELINE) as sim:
            thing = self.Thing()
            sim.new_object(thing, qualifier_is_approx=True, fields=self._specs())
            assert sim.object_is_approx(thing)
            sim.field_store(thing, "x", 2.5)
            assert sim.field_load(thing, "x") == 2.5
            sim.field_store(thing, "n", 3)
            assert sim.field_load(thing, "n") == 3

    def test_unregistered_object_is_precise(self):
        with Simulator(BASELINE) as sim:
            assert not sim.object_is_approx(object())

    def test_endorse_counts(self):
        with Simulator(BASELINE) as sim:
            assert sim.endorse(42) == 42
            sim.endorse(1.0)
        assert sim.stats().endorsements == 2


class TestStats:
    def test_snapshot_fields(self):
        with Simulator(MEDIUM, seed=0) as sim:
            sim.binop("mul", "float", True, 2.0, 4.0)
            sim.local_read(1.0, "float", True)
            sim.local_write(2, "int", False)
        stats = sim.stats()
        assert stats.fp_ops_approx == 1
        assert stats.sram_approx_byte_ticks == 4
        assert stats.sram_precise_byte_ticks == 4
        assert stats.sram_approx_fraction == 0.5
        as_dict = stats.as_dict()
        assert as_dict["fp_ops_approx"] == 1
        assert 0 <= as_dict["sram_approx_fraction"] <= 1

    def test_fp_proportion(self):
        with Simulator(BASELINE) as sim:
            sim.binop("add", "int", False, 1, 1)
            sim.binop("add", "float", False, 1.0, 1.0)
            sim.binop("add", "float", False, 1.0, 1.0)
        assert sim.stats().fp_proportion == pytest.approx(2 / 3)

    def test_deterministic_runs(self):
        def run(seed):
            with Simulator(AGGRESSIVE, seed=seed) as sim:
                values = [sim.binop("add", "float", True, float(i), 1.0) for i in range(200)]
            return values

        assert run(5) == run(5)
        assert run(5) != run(6)
