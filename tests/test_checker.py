"""Tests for the EnerPy static checker (paper Section 2 rules)."""

import textwrap

from repro.core.checker import check_modules


PRELUDE = "from repro import Approx, Precise, Top, Context, approximable, endorse\n"


def check_src(source: str):
    """Check a test snippet; the EnerPy prelude is prepended after dedent."""
    return check_modules({"m": PRELUDE + textwrap.dedent(source)})


def codes(source: str):
    return sorted(set(check_src(source).codes()))


class TestFlowRules:
    def test_approx_to_precise_assignment_rejected(self):
        assert "flow" in codes(
            """
            def f() -> None:
                a: Approx[int] = 1
                p: int = 0
                p = a
            """
        )

    def test_endorse_permits_the_flow(self):
        result = check_src(
            """
            def f() -> None:
                a: Approx[int] = 1
                p: int = 0
                p = endorse(a)
            """
        )
        assert result.ok

    def test_precise_to_approx_allowed_by_subtyping(self):
        result = check_src(
            """
            def f() -> None:
                p: int = 1
                a: Approx[int] = 0
                a = p
            """
        )
        assert result.ok

    def test_approx_argument_to_precise_parameter_rejected(self):
        assert "flow" in codes(
            """
            def callee(x: float) -> None:
                pass

            def caller() -> None:
                a: Approx[float] = 1.0
                callee(a)
            """
        )

    def test_precise_argument_to_approx_parameter_ok(self):
        result = check_src(
            """
            def callee(x: Approx[float]) -> None:
                pass

            def caller() -> None:
                callee(1.0)
            """
        )
        assert result.ok

    def test_approx_return_from_precise_function_rejected(self):
        assert "return-type" in codes(
            """
            def f() -> float:
                a: Approx[float] = 1.0
                return a
            """
        )

    def test_approx_escape_to_unknown_function(self):
        assert "approx-escape" in codes(
            """
            def f() -> None:
                a: Approx[float] = 1.0
                unknown_library_call(a)
            """
        )

    def test_printing_approx_rejected(self):
        assert "approx-escape" in codes(
            """
            def f() -> None:
                a: Approx[float] = 1.0
                print(a)
            """
        )

    def test_precise_downcast_rejected(self):
        assert "flow" in codes(
            """
            def f() -> None:
                a: Approx[int] = 1
                p: int = Precise(a)
            """
        )


class TestControlFlowRules:
    def test_approx_condition_in_if_rejected(self):
        assert "condition" in codes(
            """
            def f() -> None:
                a: Approx[int] = 1
                flag: bool = False
                if a == 5:
                    flag = True
            """
        )

    def test_endorsed_condition_allowed(self):
        result = check_src(
            """
            def f() -> None:
                a: Approx[int] = 1
                flag: bool = False
                if endorse(a == 5):
                    flag = True
            """
        )
        assert result.ok

    def test_approx_while_condition_rejected(self):
        assert "condition" in codes(
            """
            def f() -> None:
                a: Approx[float] = 10.0
                while a > 0.0:
                    a = a - 1.0
            """
        )

    def test_approx_ternary_condition_rejected(self):
        assert "condition" in codes(
            """
            def f() -> None:
                a: Approx[int] = 1
                x: Approx[int] = 2 if a > 0 else 3
            """
        )

    def test_approx_range_bound_rejected(self):
        assert "condition" in codes(
            """
            def f() -> None:
                a: Approx[int] = 10
                total: Approx[int] = 0
                for i in range(a):
                    total = total + 1
            """
        )

    def test_approx_assert_rejected(self):
        assert "condition" in codes(
            """
            def f() -> None:
                a: Approx[int] = 1
                assert a > 0
            """
        )


class TestArrayRules:
    def test_approx_subscript_rejected(self):
        assert "subscript" in codes(
            """
            def f() -> None:
                arr: list[float] = [0.0] * 4
                i: Approx[int] = 1
                x: float = arr[i]
            """
        )

    def test_endorsed_subscript_allowed(self):
        result = check_src(
            """
            def f() -> None:
                arr: list[float] = [0.0] * 4
                i: Approx[int] = 1
                x: float = arr[endorse(i)]
            """
        )
        assert result.ok

    def test_array_length_is_precise(self):
        result = check_src(
            """
            def f() -> int:
                arr: list[Approx[float]] = [0.0] * 4
                return len(arr)
            """
        )
        assert result.ok

    def test_approx_array_length_rejected(self):
        assert "subscript" in codes(
            """
            def f() -> None:
                n: Approx[int] = 8
                arr: list[float] = [0.0] * n
            """
        )

    def test_approx_elements_to_precise_element_array_rejected(self):
        assert "flow" in codes(
            """
            def f() -> None:
                arr: list[float] = [0.0] * 4
                a: Approx[float] = 1.0
                arr[0] = a
            """
        )

    def test_approx_element_array_accepts_precise_values(self):
        result = check_src(
            """
            def f() -> None:
                arr: list[Approx[float]] = [0.0] * 4
                arr[0] = 1.0
            """
        )
        assert result.ok


class TestBidirectionalTyping:
    def test_precise_operands_approx_target(self):
        """a = b + c with approximate a selects the approximate operator."""
        source = PRELUDE + textwrap.dedent(
            """
            def f() -> None:
                b: float = 1.0
                c: float = 2.0
                a: Approx[float] = 0.0
                a = b + c
            """
        )
        result = check_modules({"m": source})
        assert result.ok
        binops = [f for f in result.facts.values() if f.get("role") == "binop"]
        assert any(f["approx"] is True for f in binops)

    def test_precise_target_keeps_precise_operator(self):
        source = PRELUDE + textwrap.dedent(
            """
            def f() -> None:
                b: float = 1.0
                c: float = 2.0
                a: float = b + c
            """
        )
        result = check_modules({"m": source})
        assert result.ok
        binops = [f for f in result.facts.values() if f.get("role") == "binop"]
        assert all(f["approx"] is False for f in binops)

    def test_augassign_on_approx_target(self):
        source = PRELUDE + textwrap.dedent(
            """
            def f() -> None:
                a: Approx[float] = 0.0
                a += 1.0
            """
        )
        result = check_modules({"m": source})
        assert result.ok
        binops = [f for f in result.facts.values() if f.get("role") == "binop"]
        assert any(f["approx"] is True for f in binops)


class TestApproximableClasses:
    CLASS = PRELUDE + textwrap.dedent(
        """
        @approximable
        class IntPair:
            x: Context[int]
            y: Context[int]
            num_additions: Approx[int]

            def __init__(self, x: Context[int], y: Context[int]) -> None:
                self.x = x
                self.y = y
                self.num_additions = 0

            def add_to_both(self, amount: Context[int]) -> None:
                self.x = self.x + amount
                self.y = self.y + amount
                self.num_additions = self.num_additions + 1
        """
    )

    def test_paper_intpair_example_checks(self):
        result = check_modules({"m": self.CLASS})
        assert result.ok

    def test_precise_instance_context_field_is_precise(self):
        source = self.CLASS + textwrap.dedent(
            """
            def use() -> int:
                p: IntPair = IntPair(1, 2)
                return p.x
            """
        )
        assert check_modules({"m": source}).ok

    def test_approx_instance_context_field_is_approx(self):
        source = self.CLASS + textwrap.dedent(
            """
            def use() -> int:
                a: Approx[IntPair] = IntPair(1, 2)
                return a.x
            """
        )
        assert "return-type" in check_modules({"m": source}).codes()

    def test_approx_field_approx_even_on_precise_instance(self):
        source = self.CLASS + textwrap.dedent(
            """
            def use() -> int:
                p: IntPair = IntPair(1, 2)
                return p.num_additions
            """
        )
        assert "return-type" in check_modules({"m": source}).codes()

    def test_approx_argument_to_precise_instance_method_rejected(self):
        # p.add_to_both(approx) adapts Context to precise: rejected.
        source = self.CLASS + textwrap.dedent(
            """
            def use() -> None:
                p: IntPair = IntPair(1, 2)
                amt: Approx[int] = 5
                p.add_to_both(amt)
            """
        )
        assert "flow" in check_modules({"m": source}).codes()

    def test_approx_argument_to_approx_instance_method_ok(self):
        source = self.CLASS + textwrap.dedent(
            """
            def use() -> None:
                a: Approx[IntPair] = IntPair(1, 2)
                amt: Approx[int] = 5
                a.add_to_both(amt)
            """
        )
        assert check_modules({"m": source}).ok

    def test_approx_instance_of_plain_class_rejected(self):
        source = PRELUDE + textwrap.dedent(
            """
            class Plain:
                x: int

                def __init__(self) -> None:
                    self.x = 0

            def use() -> None:
                a: Approx[Plain] = Plain()
            """
        )
        assert "not-approximable" in check_modules({"m": source}).codes()

    def test_context_outside_approximable_rejected(self):
        source = PRELUDE + textwrap.dedent(
            """
            class Plain:
                x: Context[int]
            """
        )
        assert "context-outside" in check_modules({"m": source}).codes()

    def test_precise_class_not_subtype_of_approx_class(self):
        source = self.CLASS + textwrap.dedent(
            """
            def use() -> None:
                p: IntPair = IntPair(1, 2)
                a: Approx[IntPair] = p
            """
        )
        assert "incompatible" in check_modules({"m": source}).codes()

    def test_write_context_field_through_top_receiver_rejected(self):
        source = self.CLASS + textwrap.dedent(
            """
            def use() -> None:
                t: Top[IntPair] = IntPair(1, 2)
                t.x = 5
            """
        )
        assert "lost-write" in check_modules({"m": source}).codes()

    def test_read_context_field_through_top_receiver_allowed(self):
        # Reading at lost precision is fine; only writes are unsound.
        source = self.CLASS + textwrap.dedent(
            """
            def use() -> None:
                t: Top[IntPair] = IntPair(1, 2)
                v = t.x
            """
        )
        result = check_modules({"m": source})
        assert "lost-write" not in result.codes()


class TestAlgorithmicApproximation:
    FLOATSET = PRELUDE + textwrap.dedent(
        """
        @approximable
        class FloatSet:
            nums: Context[list[float]]

            def __init__(self, nums: Context[list[float]]) -> None:
                self.nums = nums

            def mean(self) -> float:
                total: float = 0.0
                for i in range(len(self.nums)):
                    total = total + self.nums[i]
                return total / len(self.nums)

            def mean_APPROX(self) -> Approx[float]:
                total: Approx[float] = 0.0
                for i in range(0, len(self.nums), 2):
                    total = total + self.nums[i]
                return 2 * total / len(self.nums)
        """
    )

    def test_paper_floatset_example_checks(self):
        assert check_modules({"m": self.FLOATSET}).ok

    def test_approx_receiver_dispatches_to_variant(self):
        source = self.FLOATSET + textwrap.dedent(
            """
            def use() -> float:
                s: Approx[FloatSet] = FloatSet([1.0] * 8)
                m: Approx[float] = s.mean()
                return endorse(m)
            """
        )
        result = check_modules({"m": source})
        assert result.ok
        invokes = [f for f in result.facts.values() if f.get("role") == "invoke"]
        assert any(f["dispatch"] == "approx" and f["method"] == "mean" for f in invokes)

    def test_precise_receiver_uses_precise_method(self):
        source = self.FLOATSET + textwrap.dedent(
            """
            def use() -> float:
                s: FloatSet = FloatSet([1.0] * 8)
                return s.mean()
            """
        )
        result = check_modules({"m": source})
        assert result.ok
        invokes = [f for f in result.facts.values() if f.get("role") == "invoke"]
        assert not invokes

    def test_approx_variant_outside_approximable_rejected(self):
        source = PRELUDE + textwrap.dedent(
            """
            class Plain:
                def m(self) -> int:
                    return 1

                def m_APPROX(self) -> Approx[int]:
                    return 1
            """
        )
        assert "not-approximable" in check_modules({"m": source}).codes()


class TestMiscRules:
    def test_unknown_field_rejected(self):
        source = PRELUDE + textwrap.dedent(
            """
            class C:
                x: int

                def __init__(self) -> None:
                    self.x = 0

            def f() -> None:
                c: C = C()
                v: int = c.missing
            """
        )
        assert "unknown-field" in check_modules({"m": source}).codes()

    def test_unknown_method_rejected(self):
        source = PRELUDE + textwrap.dedent(
            """
            class C:
                def m(self) -> None:
                    pass

            def f() -> None:
                c: C = C()
                c.missing()
            """
        )
        assert "unknown-method" in check_modules({"m": source}).codes()

    def test_arity_mismatch(self):
        assert "arity" in codes(
            """
            def callee(x: int) -> None:
                pass

            def caller() -> None:
                callee(1, 2)
            """
        )

    def test_plain_python_is_valid_enerpy(self):
        # The paper's backward-compatibility claim: unannotated Java is
        # valid EnerJ; unannotated (subset) Python is valid EnerPy.
        result = check_src(
            """
            def fib(n: int) -> int:
                if n < 2:
                    return n
                return fib(n - 1) + fib(n - 2)
            """
        )
        assert result.ok

    def test_multi_module_program(self):
        helper = PRELUDE + textwrap.dedent(
            """
            def scale(x: Approx[float]) -> Approx[float]:
                return x * 2.0
            """
        )
        main = PRELUDE + textwrap.dedent(
            """
            from helper import scale

            def run() -> float:
                a: Approx[float] = 3.0
                return endorse(scale(a))
            """
        )
        result = check_modules({"helper": helper, "main": main})
        assert result.ok

    def test_math_with_approx_arg_marks_fact(self):
        source = PRELUDE + "import math\n" + textwrap.dedent(
            """
            def f() -> float:
                a: Approx[float] = 2.0
                r: Approx[float] = math.sqrt(a)
                return endorse(r)
            """
        )
        result = check_modules({"m": source})
        assert result.ok
        assert any(f.get("role") == "math" for f in result.facts.values())

    def test_approx_is_and_in_rejected(self):
        assert "incompatible" in codes(
            """
            def f() -> None:
                a: Approx[int] = 1
                flag: bool = a is None
            """
        )
