"""Tests for the harness caches: compile-once, precise-output memoisation,
and the clear_caches() reset hook.

The session-wide caches are swapped for scratch dicts via monkeypatch so
these tests cannot perturb (or be perturbed by) the rest of the suite.
"""

import dataclasses

import pytest

from repro.apps import app_by_name
from repro.experiments import harness
from repro.hardware.config import BASELINE

SMALL_MC = dataclasses.replace(
    app_by_name("montecarlo"), name="MonteCarlo@cache-test", default_args=(500, 0)
)


@pytest.fixture
def fresh_caches(monkeypatch):
    monkeypatch.setattr(harness, "_PROGRAM_CACHE", {})
    monkeypatch.setattr(harness, "_PRECISE_CACHE", {})


@pytest.fixture
def counting_compile(monkeypatch, fresh_caches):
    calls = []
    real = harness.compile_program

    def wrapper(sources):
        calls.append(1)
        return real(sources)

    monkeypatch.setattr(harness, "compile_program", wrapper)
    return calls


@pytest.fixture
def counting_run(monkeypatch, fresh_caches):
    calls = []
    real = harness.run_app

    def wrapper(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(harness, "run_app", wrapper)
    return calls


class TestCompiledAppCache:
    def test_compiles_once_per_spec(self, counting_compile):
        first = harness.compiled_app(SMALL_MC)
        second = harness.compiled_app(SMALL_MC)
        assert first is second
        assert len(counting_compile) == 1

    def test_distinct_specs_compile_separately(self, counting_compile):
        other = dataclasses.replace(SMALL_MC, name="MonteCarlo@cache-test-2")
        harness.compiled_app(SMALL_MC)
        harness.compiled_app(other)
        assert len(counting_compile) == 2

    def test_clear_caches_forces_recompile(self, counting_compile):
        harness.compiled_app(SMALL_MC)
        harness.clear_caches()
        harness.compiled_app(SMALL_MC)
        assert len(counting_compile) == 2


class TestPreciseOutputCache:
    def test_memoised_per_name_and_workload_seed(self, counting_run):
        harness.precise_output(SMALL_MC, workload_seed=0)
        harness.precise_output(SMALL_MC, workload_seed=0)
        assert len(counting_run) == 1
        harness.precise_output(SMALL_MC, workload_seed=1)
        assert len(counting_run) == 2

    def test_cached_value_is_identical_object(self, fresh_caches):
        first = harness.precise_output(SMALL_MC, workload_seed=0)
        second = harness.precise_output(SMALL_MC, workload_seed=0)
        assert first is second

    def test_clear_caches_forces_rerun(self, counting_run):
        harness.precise_output(SMALL_MC, workload_seed=0)
        harness.clear_caches()
        harness.precise_output(SMALL_MC, workload_seed=0)
        assert len(counting_run) == 2


class TestClearCaches:
    def test_resets_both_caches(self, fresh_caches):
        harness.compiled_app(SMALL_MC)
        harness.precise_output(SMALL_MC, workload_seed=0)
        assert harness._PROGRAM_CACHE and harness._PRECISE_CACHE
        harness.clear_caches()
        assert not harness._PROGRAM_CACHE
        assert not harness._PRECISE_CACHE

    def test_results_stable_across_clear(self, fresh_caches):
        before = harness.precise_output(SMALL_MC, workload_seed=0)
        harness.clear_caches()
        after = harness.precise_output(SMALL_MC, workload_seed=0)
        assert before == after

    def test_idempotent_with_and_without_active_store(self, fresh_caches, tmp_path):
        from repro import store as store_mod
        from repro.store import RunStore

        harness.clear_caches()  # no store active: must be a no-op
        harness.clear_caches()
        previous = store_mod.set_active_store(RunStore(str(tmp_path / "cache")))
        try:
            harness.clear_caches()
            assert store_mod.active_store() is None
            harness.clear_caches()  # second reset after close: still fine
        finally:
            store_mod.set_active_store(previous)

    def test_shared_store_handle_survives_clear(self, fresh_caches, tmp_path):
        # The simulation daemon holds a share()d reference to the store
        # it installs; a harness reset must not close it underneath.
        from repro import store as store_mod
        from repro.store import RunStore
        from repro.hardware.config import MEDIUM

        store = RunStore(str(tmp_path / "cache"))
        previous = store_mod.set_active_store(store.share())
        try:
            harness.clear_caches()
            harness.clear_caches()  # idempotence with a live shared holder
            key = harness.RunKey(
                spec=SMALL_MC, config=MEDIUM, fault_seed=1, workload_seed=0
            )
            result = harness.run_key(key)  # no store active: plain run
            store.put(key, result.output, result.stats)  # handle still open
            assert store.get(key).output == result.output
        finally:
            store_mod.set_active_store(previous)
            store.close()
