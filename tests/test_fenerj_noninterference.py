"""Property tests: type soundness and non-interference (paper Sec. 3.3).

The paper proves two properties of FEnerJ; we check them empirically on
randomly generated well-typed programs:

* **Type soundness** — evaluating a well-typed program never raises an
  isolation violation or a stuck-state error, and the result's runtime
  precision agrees with its static type.
* **Non-interference** — perturbing every approximate value (the most
  adversarial instantiation of the paper's approximating rule) never
  changes the precise heap projection or a precise result.

The negative control shows the machinery has teeth: once ``endorse``
enters the language, interference becomes observable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qualifiers import APPROX, PRECISE
from repro.errors import IsolationViolation
from repro.fenerj.interp import run_program
from repro.fenerj.noninterference import (
    IdentityPolicy,
    OffsetPolicy,
    RandomPerturbPolicy,
    check_noninterference,
    random_program,
)
from repro.fenerj.typesys import TypeChecker

seeds = st.integers(min_value=0, max_value=10_000)


class TestGeneratedProgramsAreWellTyped:
    @given(seeds, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_generator_produces_well_typed_programs(self, seed, main_approx):
        program = random_program(seed, main_approx=main_approx)
        result_type = TypeChecker(program).check_program()
        # The observable is a precise field read.
        assert result_type.qualifier is PRECISE

    @given(seeds)
    @settings(max_examples=30, deadline=None)
    def test_endorse_variant_typechecks_permissively(self, seed):
        program = random_program(seed, with_endorse=True)
        TypeChecker(program, allow_endorse=True).check_program()


class TestTypeSoundness:
    @given(seeds, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_no_isolation_violation_under_identity(self, seed, main_approx):
        program = random_program(seed, main_approx=main_approx)
        TypeChecker(program).check_program()
        result, _heap = run_program(program, IdentityPolicy(), check_isolation=True)
        assert not result.approx  # precise observable

    @given(seeds, seeds)
    @settings(max_examples=60, deadline=None)
    def test_no_isolation_violation_under_adversarial_policy(self, seed, policy_seed):
        # Soundness of the checked semantics: even when every
        # approximate value is replaced with garbage, the well-typed
        # program never routes it into precise state.
        program = random_program(seed)
        TypeChecker(program).check_program()
        policy = RandomPerturbPolicy(policy_seed, rate=1.0)
        run_program(program, policy, check_isolation=True)

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_runtime_precision_matches_static_type(self, seed):
        program = random_program(seed, main_approx=True)
        static = TypeChecker(program).check_program()
        result, _ = run_program(program, OffsetPolicy(3))
        assert result.approx == (static.qualifier is APPROX)


class TestNonInterference:
    @given(seeds, seeds, st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_noninterference_holds(self, seed, policy_seed, main_approx):
        """The headline property: approximate faults never reach precise state."""
        program = random_program(seed, main_approx=main_approx)
        TypeChecker(program).check_program()
        ni = check_noninterference(
            program,
            policy_a=IdentityPolicy(),
            policy_b=RandomPerturbPolicy(policy_seed, rate=1.0),
        )
        assert not ni.interferes, ni.detail

    @given(seeds)
    @settings(max_examples=40, deadline=None)
    def test_two_different_fault_streams_agree_on_precise_state(self, seed):
        program = random_program(seed)
        ni = check_noninterference(
            program,
            policy_a=RandomPerturbPolicy(seed + 1, rate=1.0),
            policy_b=RandomPerturbPolicy(seed + 2, rate=1.0),
        )
        assert not ni.interferes, ni.detail

    def test_negative_control_endorse_interferes_somewhere(self):
        """With endorse in the language, interference must be observable.

        Not every endorsing program interferes (the endorsed value may
        never reach the observable), but across a batch some must.
        """
        interfered = 0
        for seed in range(60):
            program = random_program(seed, with_endorse=True)
            TypeChecker(program, allow_endorse=True).check_program()
            ni = check_noninterference(
                program,
                policy_a=IdentityPolicy(),
                policy_b=RandomPerturbPolicy(seed + 7, rate=1.0),
            )
            if ni.interferes:
                interfered += 1
        assert interfered > 0

    def test_hand_written_paper_style_program(self):
        from repro.fenerj.parser import parse_program

        program = parse_program(
            """
            class IntPair extends Object {
              context int x;
              context int y;
              approx int n;
              precise int sum;
              context int bump(context int amount) context {
                this.x := this.x + amount ;
                this.n := this.n + 1 ;
                this.x
              }
            }
            main IntPair {
              this.bump(3) ;
              this.bump(4) ;
              this.sum := this.x + this.y ;
              this.sum
            }
            """
        )
        TypeChecker(program).check_program()
        ni = check_noninterference(
            program, IdentityPolicy(), RandomPerturbPolicy(5, rate=1.0)
        )
        # The precise instance's context fields are precise: the result
        # must be exactly 7 under every policy.
        assert not ni.interferes
        assert ni.result_a.data == 7
        assert ni.result_b.data == 7
