"""Regression tests for deterministic diagnostic ordering."""

import ast

from repro.core.diagnostics import Diagnostic, DiagnosticSink, Severity


def _node(line: int, column: int = 0):
    node = ast.Pass()
    node.lineno = line
    node.col_offset = column
    return node


class TestDeterministicOrdering:
    def test_diagnostics_sorted_regardless_of_emission_order(self):
        sink = DiagnosticSink()
        sink.error("flow", "third", _node(30), module="zeta")
        sink.error("flow", "first", _node(2), module="alpha")
        sink.warning("overload", "second", _node(10), module="alpha")
        ordered = sink.diagnostics
        assert [(d.module, d.line) for d in ordered] == [
            ("alpha", 2),
            ("alpha", 10),
            ("zeta", 30),
        ]

    def test_same_site_orders_by_column_then_code(self):
        sink = DiagnosticSink()
        sink.error("subscript", "b", _node(5, 8), module="m")
        sink.error("condition", "a", _node(5, 8), module="m")
        sink.error("condition", "c", _node(5, 2), module="m")
        assert [(d.column, d.code) for d in sink.diagnostics] == [
            (2, "condition"),
            (8, "condition"),
            (8, "subscript"),
        ]

    def test_errors_and_codes_follow_sorted_order(self):
        sink = DiagnosticSink()
        sink.error("flow", "late", _node(9), module="m")
        sink.warning("overload", "warn", _node(1), module="m")
        sink.error("condition", "early", _node(3), module="m")
        assert sink.codes() == ["condition", "flow"]
        assert [d.severity for d in sink.errors] == [Severity.ERROR, Severity.ERROR]
        assert sink.has_errors

    def test_summary_renders_in_sorted_order(self):
        sink = DiagnosticSink()
        sink.error("flow", "second", _node(20), module="m")
        sink.error("flow", "first", _node(1), module="m")
        lines = sink.summary().splitlines()
        assert "first" in lines[0]
        assert "second" in lines[1]

    def test_summary_limit_still_counts_hidden(self):
        sink = DiagnosticSink()
        for line in (3, 1, 2):
            sink.error("flow", f"at {line}", _node(line), module="m")
        summary = sink.summary(limit=1)
        assert "at 1" in summary
        assert "2 more" in summary

    def test_diagnostic_str_is_stable(self):
        diagnostic = Diagnostic("flow", "msg", 4, 2, "mod")
        assert str(diagnostic) == "mod:4:2: error: [flow] msg"
