"""Tests for the approximation-aware ISA (assembler, validator, machine)."""

import pytest

from repro.core.qualifiers import APPROX
from repro.errors import SimulationError
from repro.fenerj.parser import parse_expression
from repro.hardware import AGGRESSIVE, BASELINE, MEDIUM
from repro.isa import (
    AssemblyError,
    CodegenError,
    Machine,
    Opcode,
    Register,
    ValidationError,
    assemble,
    compile_expression,
    validate,
)


def run(source: str, config=BASELINE, seed=0):
    program = assemble(source)
    return Machine(config, seed=seed).run(program)


class TestRegisters:
    def test_parse(self):
        assert Register.parse("r3") == Register(False, 3)
        assert Register.parse("a15") == Register(True, 15)
        assert str(Register.parse("A2")) == "a2"

    def test_bad_names(self):
        with pytest.raises(ValueError):
            Register.parse("x1")
        with pytest.raises(ValueError):
            Register(False, 16)


class TestAssembler:
    def test_labels_and_jumps(self):
        program = assemble("start:\n    jmp end\nend:\n    halt\n")
        assert program.labels == {"start": 0, "end": 1}

    def test_label_with_instruction_on_same_line(self):
        program = assemble("loop: halt\n")
        assert program.labels["loop"] == 0
        assert program.instructions[0].opcode is Opcode.HALT

    def test_directives(self):
        program = assemble(".approx 100 8\n.word 100 42\n    halt\n")
        assert program.approx_regions == [(100, 8)]
        assert program.memory_init == {100: 42}
        assert program.address_is_approx(104)
        assert not program.address_is_approx(108)

    def test_comments_ignored(self):
        program = assemble("    li r1, 5 ; five\n    halt\n")
        assert program.instructions[0].imm == 5

    def test_unknown_instruction(self):
        with pytest.raises(AssemblyError):
            assemble("    frobnicate r1, r2\n")

    def test_wrong_arity(self):
        with pytest.raises(AssemblyError):
            assemble("    add r1, r2\n")

    def test_undefined_label(self):
        with pytest.raises(AssemblyError):
            assemble("    jmp nowhere\n")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("x:\nx:\n    halt\n")

    def test_float_immediates(self):
        program = assemble("    li a1, 2.5\n    halt\n")
        assert program.instructions[0].imm == 2.5


class TestValidator:
    def test_approx_branch_rejected(self):
        with pytest.raises(ValidationError, match="branch"):
            validate(assemble("    li a1, 1\nx:    beqz a1, x\n"))

    def test_approx_out_rejected(self):
        with pytest.raises(ValidationError, match="out"):
            validate(assemble("    li a1, 1\n    out a1\n"))

    def test_mov_approx_to_precise_rejected(self):
        with pytest.raises(ValidationError, match="mov.e"):
            validate(assemble("    li a1, 1\n    mov r1, a1\n"))

    def test_mov_e_allowed(self):
        validate(assemble("    li a1, 1\n    mov.e r1, a1\n    out r1\n    halt\n"))

    def test_approx_op_must_target_approx_register(self):
        with pytest.raises(ValidationError, match="approximate register"):
            validate(assemble("    add.a r1, r2, r3\n"))

    def test_precise_op_rejects_approx_sources(self):
        with pytest.raises(ValidationError, match="reads approximate"):
            validate(assemble("    li a1, 1\n    add r1, a1, r2\n"))

    def test_precise_into_approx_register_allowed(self):
        validate(assemble("    add a1, r1, r2\n    halt\n"))

    def test_approx_base_register_rejected(self):
        with pytest.raises(ValidationError, match="base"):
            validate(assemble("    li a1, 100\n    ld r1, a1, 0\n"))

    def test_constant_store_to_precise_memory_rejected(self):
        with pytest.raises(ValidationError, match="precise memory"):
            validate(assemble("    li a1, 1\n    st a1, r0, 50\n"))

    def test_store_to_approx_region_allowed(self):
        validate(assemble(".approx 50 4\n    li a1, 1\n    st a1, r0, 50\n    halt\n"))


class TestExecution:
    def test_arithmetic_loop(self):
        source = """
            li r1, 0
            li r2, 5
            li r3, 0
        loop:
            slt r4, r1, r2
            beqz r4, done
            add r3, r3, r1
            li r5, 1
            add r1, r1, r5
            jmp loop
        done:
            out r3
            halt
        """
        result = run(source)
        assert result.output == [10]  # 0+1+2+3+4

    def test_memory_roundtrip(self):
        source = """
            li r1, 7
            st r1, r0, 100
            ld r2, r0, 100
            out r2
            halt
        """
        assert run(source).output == [7]

    def test_zero_register_is_hard_zero(self):
        source = """
            li r1, 5
            add r0, r1, r1
            out r0
            halt
        """
        assert run(source).output == [0]

    def test_fp_pipeline(self):
        source = """
            li a1, 0.5
            fadd.a a2, a1, a1
            fmul.a a3, a2, a2
            mov.e r1, a3
            out r1
            halt
        """
        assert run(source).output == [1.0]

    def test_ops_counted_by_precision(self):
        source = """
            li a1, 2
            add.a a2, a1, a1
            add r1, r0, r0
            out r1
            halt
        """
        result = run(source)
        assert result.int_ops_approx == 1
        assert result.int_ops_precise == 1

    def test_step_limit(self):
        with pytest.raises(SimulationError):
            run("x:    jmp x\n")

    def test_baseline_is_fault_free(self):
        source = """
            li a1, 100
            add.a a2, a1, a1
            mov.e r1, a2
            out r1
            halt
        """
        for seed in range(5):
            result = run(source, BASELINE, seed)
            assert result.output == [200]
            assert result.faults == 0

    def test_aggressive_faults_appear_in_bulk(self):
        lines = ["    li a1, 1", "    li a2, 0"]
        for _ in range(2000):
            lines.append("    add.a a2, a2, a1")
        lines += ["    mov.e r1, a2", "    out r1", "    halt"]
        result = run("\n".join(lines), AGGRESSIVE, seed=3)
        assert result.faults > 0

    def test_approx_memory_decays_when_idle(self):
        import dataclasses

        hot = dataclasses.replace(AGGRESSIVE, seconds_per_tick=1.0, name="hot")
        source = """
            .approx 100 4
            li r1, 0
            st r1, r0, 100
            li r2, 0
            li r3, 20000
        wait:
            li r4, 1
            add r2, r2, r4
            slt r5, r2, r3
            bnez r5, wait
            ld r6, r0, 100
            out r6
            halt
        """
        result = run(source, hot, seed=1)
        assert result.output[0] != 0  # the stored zero decayed

    def test_deterministic_per_seed(self):
        source = """
            li a1, 3
            mul.a a2, a1, a1
            mov.e r1, a2
            out r1
            halt
        """
        assert run(source, MEDIUM, 4).output == run(source, MEDIUM, 4).output


class TestCodegen:
    def test_precise_expression(self):
        asm = compile_expression(parse_expression("1 + 2 * 3"))
        assert "add r" in asm and ".a" not in asm
        assert run(asm).output == [7]

    def test_approx_expression_uses_approx_instructions(self):
        asm = compile_expression(parse_expression("(approx int) 3 + 4"))
        assert "add.a a" in asm
        assert "mov.e" in asm  # endorsed at the output boundary
        assert run(asm).output == [7]

    def test_endorse_compiles_to_mov_e(self):
        asm = compile_expression(parse_expression("endorse((approx int) 5 * 2) + 1"))
        assert "mov.e" in asm
        assert run(asm).output == [11]

    def test_conditional(self):
        asm = compile_expression(parse_expression("if (1 < 2) { 10 } else { 20 }"))
        assert run(asm).output == [10]

    def test_float_expression(self):
        asm = compile_expression(parse_expression("1.5 + 2.25"))
        assert "fadd" in asm
        assert run(asm).output == [3.75]

    def test_approx_condition_rejected(self):
        with pytest.raises(CodegenError, match="condition"):
            compile_expression(
                parse_expression("if ((approx int) 1 == 1) { 1 } else { 2 }")
            )

    def test_generated_code_always_validates(self):
        # Qualifier-directed selection means the validator passes by
        # construction.
        for text in (
            "1 + 2",
            "(approx int) 1 + (approx int) 2",
            "endorse((approx float) 1.5 * 2.0)",
            "if (1 == 1) { (approx int) 4 } else { (approx int) 5 } ; 9",
            "3 ; 4 ; (approx int) 5 * 5",
        ):
            asm = compile_expression(parse_expression(text))
            validate(assemble(asm))

    def test_sequence(self):
        asm = compile_expression(parse_expression("1 ; 2 ; 3"))
        assert run(asm).output == [3]


class TestDisassembler:
    ROUND_TRIP_SOURCES = [
        """
        .approx 100 16
        .word 100 7
            li r1, 0
            li r2, 4
        loop:
            slt r3, r1, r2
            beqz r3, done
            ld a1, r1, 100
            li r4, 1
            add r1, r1, r4
            jmp loop
        done:
            out r1
            halt
        """,
        "    li a1, 2.5\n    fadd.a a2, a1, a1\n    mov.e r1, a2\n    out r1\n    halt\n",
        "end:\n",  # a bare trailing label is legal
    ]

    def test_round_trip(self):
        from repro.isa import disassemble

        for source in self.ROUND_TRIP_SOURCES:
            program = assemble(source)
            text = disassemble(program)
            again = assemble(text)
            assert again.instructions == program.instructions, text
            assert again.labels == program.labels
            assert again.memory_init == program.memory_init
            assert again.approx_regions == program.approx_regions

    def test_round_trip_preserves_behaviour(self):
        from repro.isa import disassemble

        source = self.ROUND_TRIP_SOURCES[0]
        original = Machine(BASELINE, seed=1).run(assemble(source))
        reassembled = Machine(BASELINE, seed=1).run(assemble(disassemble(assemble(source))))
        assert original.output == reassembled.output
