"""Trace determinism: parallel traced runs must equal serial ones.

Two guarantees are pinned here, matching the acceptance criteria in
OBSERVABILITY.md:

* **Order-stable traces** — the canonical ``(fault_seed, seq)`` event
  stream from ``--jobs 4`` is identical (same events, same wire bytes)
  to ``--jobs 1`` for FFT, SOR, and MonteCarlo.
* **Exact metric merging** — :class:`MetricsRegistry` forms the same
  commutative monoid as :class:`RunStats` (mirroring
  ``test_stats_merge.py``), so grouping per-run registries by worker
  never changes the aggregate.

Process-pool tests are ``slow``-marked, like the executor's own.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import app_by_name
from repro.experiments.harness import run_app
from repro.hardware.config import AGGRESSIVE, MEDIUM
from repro.observability import (
    MetricsRegistry,
    canonical_events,
    merge_trace_results,
    traced_run,
    traced_runs,
)

# Shrunk workloads: renamed specs get their own compiled-program cache
# slots, so shrinking default_args never bleeds into other tests.
FFT = dataclasses.replace(app_by_name("fft"), name="FFT@trace-test", default_args=(64, 0))
SOR = dataclasses.replace(
    app_by_name("sor"), name="SOR@trace-test", default_args=(10, 5, 0)
)
MONTECARLO = dataclasses.replace(
    app_by_name("montecarlo"), name="MonteCarlo@trace-test", default_args=(500, 0)
)
SEEDS = (1, 2, 3, 4)


def _wire(results):
    """The merged trace as canonical wire lines (what --trace-out writes)."""
    return [event.to_json() for event in canonical_events(results)]


class TestSerialDeterminism:
    """Cheap invariants that don't need a process pool."""

    @pytest.mark.parametrize("spec", [FFT, SOR, MONTECARLO], ids=lambda s: s.name)
    def test_traced_run_is_reproducible(self, spec):
        first = traced_run(spec, AGGRESSIVE, fault_seed=3)
        second = traced_run(spec, AGGRESSIVE, fault_seed=3)
        assert first.events == second.events
        assert first.metrics == second.metrics
        assert first.stats == second.stats

    @pytest.mark.parametrize("spec", [FFT, SOR, MONTECARLO], ids=lambda s: s.name)
    def test_tracing_does_not_perturb_the_run(self, spec):
        plain = run_app(spec, AGGRESSIVE, fault_seed=3)
        traced = traced_run(spec, AGGRESSIVE, fault_seed=3)
        assert traced.output == plain.output
        assert traced.stats == plain.stats

    def test_seq_restarts_per_run(self):
        results = traced_runs(MONTECARLO, AGGRESSIVE, fault_seeds=SEEDS[:2])
        for result in results:
            assert [event.seq for event in result.events[:3]] == [0, 1, 2]
            assert all(event.fault_seed == result.fault_seed for event in result.events)

    def test_canonical_order_ignores_result_order(self):
        results = traced_runs(MONTECARLO, AGGRESSIVE, fault_seeds=SEEDS[:3])
        shuffled = [results[2], results[0], results[1]]
        assert _wire(shuffled) == _wire(results)


@pytest.mark.slow
class TestParallelDeterminism:
    """jobs=1 vs jobs=4 over real process pools, per acceptance criteria."""

    @pytest.mark.parametrize("spec", [FFT, SOR, MONTECARLO], ids=lambda s: s.name)
    def test_jobs4_trace_is_bit_identical_to_serial(self, spec):
        serial = traced_runs(spec, AGGRESSIVE, fault_seeds=SEEDS, jobs=1)
        parallel = traced_runs(spec, AGGRESSIVE, fault_seeds=SEEDS, jobs=4)
        assert _wire(parallel) == _wire(serial)

    def test_merged_aggregates_match_across_jobs(self):
        serial = traced_runs(MONTECARLO, MEDIUM, fault_seeds=SEEDS, jobs=1)
        parallel = traced_runs(MONTECARLO, MEDIUM, fault_seeds=SEEDS, jobs=4)
        s_stats, s_metrics, s_events, s_dropped = merge_trace_results(serial)
        p_stats, p_metrics, p_events, p_dropped = merge_trace_results(parallel)
        assert p_stats == s_stats
        assert p_metrics == s_metrics
        assert p_events == s_events
        assert p_dropped == s_dropped == 0


# ----------------------------------------------------------------------
# MetricsRegistry merge algebra (mirrors test_stats_merge.py)
# ----------------------------------------------------------------------


def _registry_strategy():
    names = st.sampled_from(
        ["sram.read_upset", "dram.decay", "fpu.truncation", "runtime.endorse"]
    )
    counters = st.dictionaries(names, st.integers(min_value=0, max_value=10**9), max_size=4)
    buckets = st.dictionaries(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=1, max_value=10**6),
        max_size=8,
    )
    histograms = st.dictionaries(
        st.sampled_from(["bitflip.position.sram", "bitflip.position.alu"]),
        buckets,
        max_size=2,
    )

    def build(counter_map, histogram_map):
        registry = MetricsRegistry()
        for name, value in counter_map.items():
            registry.counter(name).inc(value)
        for name, bucket_map in histogram_map.items():
            for value, count in bucket_map.items():
                registry.histogram(name).observe(value, count)
        return registry

    return st.builds(build, counters, histograms)


class TestMetricsMergeAlgebra:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(_registry_strategy(), min_size=0, max_size=8), st.data())
    def test_split_merge_equals_unsplit(self, registries, data):
        split = data.draw(st.integers(min_value=0, max_value=len(registries)))
        left = MetricsRegistry.merge(registries[:split])
        right = MetricsRegistry.merge(registries[split:])
        assert left + right == MetricsRegistry.merge(registries)

    @settings(max_examples=25, deadline=None)
    @given(_registry_strategy(), _registry_strategy())
    def test_merge_is_commutative(self, a, b):
        assert a + b == b + a

    @settings(max_examples=25, deadline=None)
    @given(_registry_strategy())
    def test_zero_identity(self, registry):
        assert registry + MetricsRegistry() == registry
        assert MetricsRegistry.merge([registry]) == registry

    def test_merge_empty_is_zero(self):
        assert MetricsRegistry.merge([]) == MetricsRegistry()

    def test_add_rejects_non_registry(self):
        with pytest.raises(TypeError):
            MetricsRegistry() + 3

    @settings(max_examples=25, deadline=None)
    @given(_registry_strategy(), _registry_strategy())
    def test_counters_and_buckets_sum_exactly(self, a, b):
        merged = a + b
        a_dict, b_dict = a.as_dict(), b.as_dict()
        for name, value in merged.as_dict()["counters"].items():
            assert value == a_dict["counters"].get(name, 0) + b_dict["counters"].get(
                name, 0
            )
        for name, buckets in merged.as_dict()["histograms"].items():
            for bit, count in buckets.items():
                assert count == a_dict["histograms"].get(name, {}).get(bit, 0) + b_dict[
                    "histograms"
                ].get(name, {}).get(bit, 0)

    @settings(max_examples=25, deadline=None)
    @given(_registry_strategy(), _registry_strategy())
    def test_roundtrip_commutes_with_merge(self, a, b):
        rebuilt = MetricsRegistry.from_dict(a.as_dict()) + MetricsRegistry.from_dict(
            b.as_dict()
        )
        assert rebuilt == a + b
