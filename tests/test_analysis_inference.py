"""Tests for checker-validated @Approx relaxation inference."""

import textwrap

import pytest

from repro.analysis import infer_relaxations
from repro.apps import app_by_name, load_sources
from repro.core.checker import check_modules

PRELUDE = "from repro import Approx, Precise, Top, Context, approximable, endorse\n"

SCIMARK_KERNELS = ["fft", "sor", "montecarlo", "sparsematmult", "lu"]


def infer_src(source: str):
    return infer_relaxations({"m": PRELUDE + textwrap.dedent(source)})


class TestSyntheticPrograms:
    def test_relaxable_local_is_suggested_and_validated(self):
        suggestions = infer_src(
            """
            def f() -> Approx[float]:
                x: float = 1.0
                y: Approx[float] = x * 2.0
                return y
            """
        )
        assert any(s.name == "x" and s.kind == "local" for s in suggestions)
        assert all(s.validated for s in suggestions)
        (x,) = [s for s in suggestions if s.name == "x"]
        assert x.current == "float"
        assert x.proposed == "Approx[float]"

    def test_index_variable_is_never_suggested(self):
        suggestions = infer_src(
            """
            def f() -> Approx[float]:
                arr: list[Approx[float]] = [0.0] * 8
                i: int = 3
                return arr[i]
            """
        )
        assert not any(s.name == "i" for s in suggestions)

    def test_condition_variable_is_never_suggested(self):
        suggestions = infer_src(
            """
            def f() -> int:
                gate: int = 1
                count: int = 0
                if gate > 0:
                    count = 1
                return count
            """
        )
        assert not any(s.name == "gate" for s in suggestions)

    def test_closure_includes_downstream_declarations(self):
        # Relaxing `x` forces `y` (and f's return) approximate too; the
        # suggestion must carry them as companions, not fail validation.
        suggestions = infer_src(
            """
            def f() -> float:
                x: float = 1.0
                y: float = x * 2.0
                return y
            """
        )
        by_name = {s.name: s for s in suggestions}
        if "x" in by_name:
            assert by_name["x"].companions  # y and/or the return
            assert by_name["x"].validated

    def test_mutation_survives_aliasing_annotations(self):
        # A list annotation relaxes via the Approx[list[T]] sugar.
        suggestions = infer_src(
            """
            def fill(out: list[float]) -> None:
                for i in range(len(out)):
                    out[i] = 1.0 * i

            def f() -> Approx[float]:
                data: list[Approx[float]] = [0.0] * 4
                acc: Approx[float] = 0.0
                for i in range(4):
                    acc = acc + data[i]
                return acc
            """
        )
        for suggestion in suggestions:
            assert suggestion.proposed == f"Approx[{suggestion.current}]"

    def test_ill_typed_program_is_rejected(self):
        with pytest.raises(ValueError):
            infer_relaxations(
                {
                    "m": PRELUDE
                    + "def f() -> int:\n    a: Approx[int] = 1\n    return a\n"
                }
            )

    def test_suggestions_are_sorted_and_deterministic(self):
        source = {
            "m": PRELUDE
            + textwrap.dedent(
                """
                def f() -> Approx[float]:
                    b: float = 2.0
                    a: float = 1.0
                    c: Approx[float] = a * b
                    return c
                """
            )
        }
        first = infer_relaxations(source)
        second = infer_relaxations(source)
        assert first == second
        keys = [s.sort_key for s in first]
        assert keys == sorted(keys)


class TestAppInference:
    @pytest.mark.parametrize("name", SCIMARK_KERNELS)
    def test_each_scimark_kernel_yields_a_validated_relaxation(self, name):
        spec = app_by_name(name)
        sources = load_sources(spec)
        result = check_modules(sources)
        assert result.ok
        suggestions = infer_relaxations(sources, result=result)
        assert suggestions, f"{spec.name}: no validated relaxation found"
        assert all(s.validated for s in suggestions)

    def test_rand_module_is_never_touched(self):
        spec = app_by_name("montecarlo")
        sources = load_sources(spec)
        for suggestion in infer_relaxations(sources):
            assert suggestion.module != "rand"

    def test_suggested_mutations_recheck_cleanly_when_applied(self):
        # Apply one suggestion's full closure textually and re-check —
        # the public promise of `validated=True`.
        from repro.analysis.inference import (
            _closure,
            _collect_candidates,
            _mutate_sources,
        )
        from repro.analysis.flowgraph import build_flow_graph

        spec = app_by_name("montecarlo")
        sources = load_sources(spec)
        result = check_modules(sources)
        graph = build_flow_graph(result)
        candidates = _collect_candidates(result.modules, {"rand"})
        validated_any = False
        for ident in sorted(candidates):
            if ident not in graph.nodes or graph.nodes[ident].may_approx:
                continue
            closure = _closure(graph, candidates, ident)
            if closure is None:
                continue
            mutated = _mutate_sources(sources, closure)
            if mutated is None:
                continue
            if check_modules(mutated).ok:
                validated_any = True
                break
        assert validated_any
