"""Tests for the FEnerJ big-step interpreter and checked semantics."""

import pytest

from repro.core.qualifiers import APPROX, PRECISE
from repro.errors import FEnerJRuntimeError, IsolationViolation
from repro.fenerj.interp import ApproxPolicy, Value, run_program
from repro.fenerj.noninterference import OffsetPolicy, RandomPerturbPolicy
from repro.fenerj.parser import parse_program


def run(source: str, policy=None, check_isolation=True):
    program = parse_program(source)
    return run_program(program, policy, check_isolation)


class TestBasicEvaluation:
    def test_arithmetic(self):
        result, _ = run("class C extends Object { } main C { 2 + 3 * 4 }")
        assert result.data == 14
        assert not result.approx

    def test_float_arithmetic(self):
        result, _ = run("class C extends Object { } main C { 1.5 + 2.25 }")
        assert result.data == 3.75

    def test_comparison_returns_int(self):
        result, _ = run("class C extends Object { } main C { 3 < 5 }")
        assert result.data == 1

    def test_conditional(self):
        result, _ = run(
            "class C extends Object { } main C { if (1 < 2) { 10 } else { 20 } }"
        )
        assert result.data == 10

    def test_sequence_returns_last(self):
        result, _ = run("class C extends Object { } main C { 1 ; 2 ; 3 }")
        assert result.data == 3

    def test_field_defaults(self):
        result, _ = run(
            "class C extends Object { precise int x; } main C { this.x }"
        )
        assert result.data == 0

    def test_field_write_and_read(self):
        result, _ = run(
            """
            class C extends Object { precise int x; }
            main C { this.x := 41 ; this.x + 1 }
            """
        )
        assert result.data == 42

    def test_method_call_with_params(self):
        result, _ = run(
            """
            class C extends Object {
              precise int add(precise int a, precise int b) precise { a + b }
            }
            main C { this.add(20, 22) }
            """
        )
        assert result.data == 42

    def test_new_and_cross_object_state(self):
        result, _ = run(
            """
            class Cell extends Object { precise int v; }
            class Main extends Object { precise Cell cell; }
            main Main {
              this.cell := new Cell() ;
              this.cell.v := 7 ;
              this.cell.v
            }
            """
        )
        assert result.data == 7

    def test_recursion_with_fuel_limit(self):
        source = """
        class C extends Object {
          precise int loop() precise { this.loop() }
        }
        main C { this.loop() }
        """
        with pytest.raises(FEnerJRuntimeError, match="fuel"):
            run(source)

    def test_null_dereference(self):
        source = """
        class C extends Object { precise C next; }
        main C { this.next.next }
        """
        with pytest.raises(FEnerJRuntimeError, match="null"):
            run(source)

    def test_precise_division_by_zero_raises(self):
        with pytest.raises(FEnerJRuntimeError, match="zero"):
            run("class C extends Object { } main C { 1 / 0 }")

    def test_approx_division_by_zero_is_total(self):
        # Approximate division by zero yields 0 (int), not an exception.
        result, _ = run(
            """
            class C extends Object { approx int a; }
            main C { this.a := 1 / (this.a * 0 + 0 + (this.a == this.a) - 1) ; 5 }
            """
        )
        assert result.data == 5


class TestPrecisionDispatch:
    PAIR = """
    class Pair extends Object {
      context int x;
      precise int get() precise { 1 }
      approx int get() approx { 2 }
    }
    """

    def test_precise_instance_uses_precise_body(self):
        result, _ = run(self.PAIR + "main Pair { this.get() }")
        assert result.data == 1

    def test_approx_instance_uses_approx_body(self):
        result, _ = run(self.PAIR + "main approx Pair { (precise int) 0 ; this.get() }")
        assert result.data == 2

    def test_context_new_inherits_receiver_precision(self):
        source = """
        class Inner extends Object {
          precise int tag() precise { 1 }
          approx int tag() approx { 2 }
        }
        class Outer extends Object {
          context Inner make() context { new context Inner() }
        }
        main approx Outer { this.make().tag() }
        """
        result, _ = run(source)
        assert result.data == 2


class TestCheckedSemantics:
    def test_approx_tag_propagates(self):
        result, _ = run(
            """
            class C extends Object { approx int a; }
            main C { this.a := 5 ; this.a + 1 }
            """
        )
        assert result.approx

    def test_endorse_strips_tag(self):
        result, _ = run(
            """
            class C extends Object { approx int a; }
            main C { this.a := 5 ; endorse(this.a) }
            """
        )
        assert not result.approx
        assert result.data == 5

    def test_isolation_violation_on_unchecked_program(self):
        # Built by hand (the type checker would reject it): write an
        # approx-tagged value into a precise slot.
        from repro.fenerj.syntax import (
            ClassDecl,
            FieldDecl,
            FieldRead,
            FieldWrite,
            Program,
            Type,
            Var,
        )

        cell = ClassDecl(
            "C",
            "Object",
            (FieldDecl(Type(PRECISE, "int"), "p"), FieldDecl(Type(APPROX, "int"), "a")),
            (),
        )
        program = Program(
            classes=(cell,),
            main_class="C",
            main_expr=FieldWrite(Var("this"), "p", FieldRead(Var("this"), "a")),
        )
        with pytest.raises(IsolationViolation):
            run_program(program)

    def test_perturbation_applies_only_to_approx(self):
        result, _ = run(
            """
            class C extends Object { precise int p; approx int a; }
            main C { this.p := 1 + 1 ; this.a := 1 + 1 ; this.p }
            """,
            policy=OffsetPolicy(100),
        )
        assert result.data == 2  # the precise sum is untouched

    def test_perturbation_changes_approx_slot(self):
        _, heap = run(
            """
            class C extends Object { approx int a; }
            main C { this.a := 1 + 1 }
            """,
            policy=OffsetPolicy(100),
        )
        objects = list(heap.objects().values())
        assert objects[0].fields["a"].data >= 102  # perturbed on op and store

    def test_policy_kind_mismatch_rejected(self):
        class Broken(ApproxPolicy):
            def perturb(self, value):
                return Value("oops", "ref", True)

        with pytest.raises(FEnerJRuntimeError, match="kind"):
            run(
                """
                class C extends Object { approx int a; }
                main C { this.a := 1 + 1 }
                """,
                policy=Broken(),
            )


class TestHeapProjection:
    def test_projection_hides_approx_slots(self):
        _, heap = run(
            """
            class C extends Object { precise int p; approx int a; }
            main C { this.p := 1 ; this.a := 2 }
            """
        )
        projection = heap.precise_projection()
        (_, (class_name, qualifier, fields)), = projection.items()
        assert class_name == "C"
        assert fields == {"p": 1}
