"""Property tests for the QoS metric edge contracts (Hypothesis).

The acceptability checks (:mod:`repro.recovery.checks`) judge outputs
*without* a precise reference, but they share plumbing with the QoS
metrics — ``_flatten`` and the "non-finite means meaningless" rule —
so the two layers must agree on the edges:

* non-finite values in the **precise** operand (the reference itself
  can be inf/NaN for pathological workloads) never escape the [0, 1]
  range or poison neighbouring entries;
* ``_flatten`` linearises arbitrarily nested, ragged structures in
  deterministic depth-first order — metric equality across different
  nestings of the same leaves;
* length mismatch is symmetric (error 1 regardless of which side is
  short);
* the checks' private LCG (``PlainRand``) reproduces the in-program
  ``Rand`` stream exactly — the FFT energy predicate recomputes the
  input signal with it, so a drift here would fail sound outputs.
"""

import math
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qos.metrics import (
    _flatten,
    clamp01,
    decision_fraction_error,
    mean_entry_difference,
    mean_normalized_difference,
    mean_pixel_difference,
    normalized_difference,
)
from repro.recovery.checks import PlainRand, check_output

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Floats including the non-finite edges the metrics must absorb.
any_floats = st.floats(allow_nan=True, allow_infinity=True, width=64)
finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)
float_lists = st.lists(any_floats, max_size=12)


@st.composite
def nested(draw, leaves, max_leaves=10):
    """A random nesting (lists/tuples, ragged, arbitrary depth) plus the
    flat leaf sequence it must linearise to."""
    flat = draw(st.lists(leaves, max_size=max_leaves))
    structure = list(flat)
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        if len(structure) < 2:
            break
        start = draw(st.integers(min_value=0, max_value=len(structure) - 2))
        stop = draw(st.integers(min_value=start + 1, max_value=len(structure)))
        group = structure[start:stop]
        wrap = tuple if draw(st.booleans()) else list
        structure[start:stop] = [wrap(group)]
    return structure, flat


class TestFlatten:
    @given(nested(any_floats))
    def test_flatten_linearises_any_nesting(self, case):
        structure, flat = case
        result = list(_flatten(structure))
        assert len(result) == len(flat)
        for left, right in zip(result, flat):
            assert left is right or left == right or (
                isinstance(left, float) and math.isnan(left) and math.isnan(right)
            )

    @given(nested(finite_floats))
    def test_metrics_are_nesting_invariant(self, case):
        structure, flat = case
        assert mean_entry_difference(structure, flat) == mean_entry_difference(
            flat, flat
        )
        assert mean_normalized_difference(
            structure, flat
        ) == mean_normalized_difference(flat, flat)


class TestRangeAndSymmetry:
    @given(float_lists, float_lists)
    def test_mean_entry_difference_in_unit_interval(self, precise, approx):
        assert 0.0 <= mean_entry_difference(precise, approx) <= 1.0

    @given(float_lists, float_lists)
    def test_mean_normalized_difference_in_unit_interval(self, precise, approx):
        assert 0.0 <= mean_normalized_difference(precise, approx) <= 1.0

    @given(float_lists, float_lists)
    def test_mean_pixel_difference_in_unit_interval(self, precise, approx):
        assert 0.0 <= mean_pixel_difference(precise, approx) <= 1.0

    @given(any_floats, any_floats)
    def test_normalized_difference_in_unit_interval(self, precise, approx):
        assert 0.0 <= normalized_difference(precise, approx) <= 1.0

    @given(float_lists, st.integers(min_value=1, max_value=4))
    def test_length_mismatch_is_symmetric(self, values, extra):
        longer = values + [0.0] * extra
        for metric in (
            mean_entry_difference,
            mean_normalized_difference,
            mean_pixel_difference,
        ):
            assert metric(values, longer) == 1.0
            assert metric(longer, values) == 1.0

    @given(st.lists(st.booleans(), max_size=10), st.integers(min_value=1, max_value=4))
    def test_decision_mismatch_is_symmetric(self, decisions, extra):
        longer = decisions + [True] * extra
        assert decision_fraction_error(decisions, longer) == 1.0
        assert decision_fraction_error(longer, decisions) == 1.0

    @given(st.lists(finite_floats, max_size=10))
    def test_identical_finite_outputs_score_zero(self, values):
        assert mean_entry_difference(values, values) == 0.0
        assert mean_normalized_difference(values, values) == 0.0
        assert mean_pixel_difference(values, values) == 0.0


class TestNonFinitePrecise:
    """NaN/inf in the *precise* operand: each poisoned entry contributes
    exactly 1 — never NaN, never leakage into other entries."""

    @given(float_lists, st.sampled_from([float("nan"), float("inf"), float("-inf")]))
    def test_poisoned_precise_entry_contributes_one(self, values, poison):
        finite = [v if math.isfinite(v) else 0.0 for v in values]
        score = mean_entry_difference([poison] + finite, [0.0] + finite)
        expected = 1.0 / (len(finite) + 1)
        assert math.isclose(score, expected, rel_tol=1e-12)

    @given(st.sampled_from([float("nan"), float("inf"), float("-inf")]), finite_floats)
    def test_normalized_difference_with_nonfinite_precise(self, poison, approx):
        value = normalized_difference(poison, approx)
        assert value == clamp01(value)

    @given(any_floats)
    def test_clamp01_never_returns_nan(self, value):
        result = clamp01(value)
        assert 0.0 <= result <= 1.0 and not math.isnan(result)


class TestSharedWithChecks:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25)
    def test_plain_rand_matches_the_in_program_rand(self, seed):
        """The checks recompute workload inputs with ``PlainRand``; the
        apps generate them with ``apps/common/rand.py`` (plain-Python
        compatible by the paper's backward-compatibility guarantee).
        The two streams must be bit-identical."""
        namespace = {}
        path = os.path.join(REPO_ROOT, "src", "repro", "apps", "common", "rand.py")
        with open(path, encoding="utf-8") as handle:
            exec(compile(handle.read(), path, "exec"), namespace)
        theirs = namespace["Rand"](seed)
        ours = PlainRand(seed)
        for _ in range(16):
            assert ours.next_float() == theirs.next_float()
        assert ours.next_in(3, 19) == theirs.next_in(3, 19)

    @given(st.lists(any_floats, min_size=1, max_size=12))
    @settings(max_examples=50)
    def test_generic_check_agrees_with_finiteness(self, output):
        """The fallback acceptability check accepts exactly the outputs
        whose flattened entries are all finite — the same rule the QoS
        metrics apply to approximate entries."""
        import dataclasses

        from repro.recovery.calib import calibration_spec

        mystery = dataclasses.replace(calibration_spec(), name="Mystery")
        verdict = check_output(mystery, 0, output)
        assert verdict.ok == all(
            math.isfinite(value) for value in _flatten(output)
        )
