"""Protocol v2 end-to-end: budget submits, version matrix, replication.

Integration coverage for the budget-based submit redesign:

* **v2 daemon**: ``{app, qos_budget}`` submits are answered with the
  tuner block (levels, energy, within_budget) and advance the app's
  controller; fixed-config submits stay bit-identical to the serial
  harness,
* **``deadline_ms`` semantics**: 0 explicitly disables the default
  deadline (v1 rejected 0), negatives are a usage error at the CLI and
  a ``bad_request`` on the wire,
* **version negotiation matrix**: a v1-shaped client against a v2
  server is answered bit-identically; a v2 budget submit against a
  protocol-1-pinned daemon — directly or relayed through the fabric
  coordinator — fails fast with a clean ``unsupported_op`` envelope,
  never a hang,
* **tuner-state replication**: budget traffic through a two-node fleet
  copies controller snapshots to the ring successor, which installs
  them (``fabric.replicated_tuner_states`` / ``tuner.state_installs``),
  and the snapshots round through public ``store_pull``/``store_push``.
"""

import os

import pytest

from repro.apps import app_by_name
from repro.experiments import harness
from repro.experiments.harness import RunKey, qos_error
from repro.fabric import FabricConfig, FabricCoordinator
from repro.hardware.config import MEDIUM
from repro.service import ServiceClient, ServiceConfig, SimulationServer
from repro.service.client import ServiceError, ServiceRequestFailed
from repro.service.protocol import ERROR_UNSUPPORTED, SimRequest
from repro.tuner.state import TUNER_STATE_KIND, TunerState

FFT = app_by_name("fft")


def _make_server(tmp_root, name, max_protocol=None):
    kwargs = {} if max_protocol is None else {"max_protocol": max_protocol}
    server = SimulationServer(
        ServiceConfig(
            port=0,
            workers=1,
            warm_apps=("fft",),
            cache_dir=os.path.join(str(tmp_root), name),
            default_deadline_ms=120_000,
            **kwargs,
        )
    )
    server.start()
    return server


def _stop(server):
    server.initiate_drain()
    server.drain(timeout=10)
    server.stop()


@pytest.fixture(scope="module")
def v2_server(tmp_path_factory):
    server = _make_server(
        tmp_path_factory.mktemp("tuner-v2"), "node", max_protocol=2
    )
    yield server
    _stop(server)
    harness.clear_caches()


@pytest.fixture(scope="module")
def v1_server(tmp_path_factory):
    server = _make_server(
        tmp_path_factory.mktemp("tuner-v1"), "node", max_protocol=1
    )
    yield server
    _stop(server)
    harness.clear_caches()


@pytest.fixture
def client(v2_server):
    host, port = v2_server.address
    with ServiceClient(host, port) as connection:
        yield connection


class TestProtocolV2Parsing:
    def test_budget_excludes_config_and_seeds(self):
        with pytest.raises(ValueError, match="not both"):
            SimRequest.from_wire({"app": "fft", "qos_budget": 0.05, "config": "mild"})
        with pytest.raises(ValueError, match="seed"):
            SimRequest.from_wire({"app": "fft", "qos_budget": 0.05, "fault_seed": 3})

    def test_budget_must_be_finite_positive(self):
        for bad in (0, -0.1, float("nan"), float("inf"), True, "0.05"):
            with pytest.raises(ValueError):
                SimRequest.from_wire({"app": "fft", "qos_budget": bad})

    def test_deadline_zero_means_no_deadline(self):
        request = SimRequest.from_wire(
            {"app": "fft", "config": "medium", "deadline_ms": 0}
        )
        assert request.deadline_ms == 0
        assert request.effective_deadline_ms(5_000) is None

    def test_deadline_none_falls_to_default(self):
        request = SimRequest.from_wire({"app": "fft", "config": "medium"})
        assert request.effective_deadline_ms(5_000) == 5_000
        assert request.effective_deadline_ms(0) is None

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            SimRequest.from_wire(
                {"app": "fft", "config": "medium", "deadline_ms": -1}
            )


class TestBudgetSubmit:
    def test_budget_answers_carry_tuner_block(self, client):
        first = client.submit("fft", qos_budget=0.1)
        second = client.submit("fft", qos_budget=0.1)
        for result in (first, second):
            assert result.qos_budget == 0.1
            assert set(result.levels) == set(("dram", "sram", "float_width", "timing"))
            assert result.config == "tuned:FFT"
            assert 0.0 < result.energy <= 1.0
            assert result.within_budget == (result.qos <= 0.1)
            assert result.tuner["identity"] == first.tuner["identity"]
        assert second.tuner["observations"] == first.tuner["observations"] + 1

    def test_budget_replay_is_deterministic(self, v2_server, tmp_path):
        """A twin daemon fed the same budget traffic lands on the same
        state digest — the controller replays bit-identically."""
        host, port = v2_server.address
        twin = _make_server(tmp_path, "twin")
        try:
            thost, tport = twin.address
            with ServiceClient(host, port) as a, ServiceClient(thost, tport) as b:
                for _ in range(4):
                    left = a.submit("fft", qos_budget=0.07)
                    right = b.submit("fft", qos_budget=0.07)
                    assert left.qos == right.qos
                    assert left.levels == right.levels
                    assert (
                        left.tuner["state_digest"] == right.tuner["state_digest"]
                    )
        finally:
            _stop(twin)

    def test_client_guards_mutual_exclusion(self, client):
        with pytest.raises(ServiceError, match="not both"):
            client.submit("fft", "medium", qos_budget=0.05)
        with pytest.raises(ServiceError, match="no seeds"):
            client.submit("fft", qos_budget=0.05, fault_seed=3)

    def test_fixed_config_stays_bit_identical(self, client):
        serial = qos_error(
            RunKey(spec=FFT, config=MEDIUM, fault_seed=7, workload_seed=0)
        )
        assert client.submit("fft", "medium", fault_seed=7).qos == serial

    def test_deadline_zero_accepted_end_to_end(self, client):
        result = client.submit("fft", "medium", fault_seed=8, deadline_ms=0)
        assert result.qos == qos_error(
            RunKey(spec=FFT, config=MEDIUM, fault_seed=8, workload_seed=0)
        )

    def test_budget_in_batch_is_answered_in_place(self, client):
        results = client.submit_batch(
            [
                {"app": "fft", "config": "medium", "fault_seed": 7},
                {"app": "fft", "qos_budget": 0.1},
            ]
        )
        assert results[0].qos_budget is None
        assert results[1].qos_budget == 0.1
        assert results[1].tuner is not None


class TestDeadlineCLI:
    def test_negative_deadline_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["submit", "fft", "--deadline-ms", "-5"]) == 1
        assert "--deadline-ms" in capsys.readouterr().err

    def test_deadline_zero_reaches_daemon(self, v2_server, capsys):
        from repro.cli import main

        host, port = v2_server.address
        code = main(
            [
                "submit",
                "fft",
                "--seed",
                "9",
                "--deadline-ms",
                "0",
                "--host",
                host,
                "--port",
                str(port),
            ]
        )
        assert code == 0
        assert "qos" in capsys.readouterr().out


class TestVersionMatrix:
    def test_v1_shaped_request_against_v2_server(self, v2_server, client):
        """A pre-v2 client never sends the new fields; answers (and the
        introspection surface) stay shape- and bit-compatible."""
        serial = qos_error(
            RunKey(spec=FFT, config=MEDIUM, fault_seed=11, workload_seed=0)
        )
        result = client.submit("fft", "medium", fault_seed=11)
        assert result.qos == serial
        assert result.qos_budget is None and result.tuner is None
        assert client.healthz()["protocol"] == 2

    def test_budget_against_v1_daemon_is_unsupported(self, v1_server):
        host, port = v1_server.address
        with ServiceClient(host, port) as connection:
            assert connection.healthz()["protocol"] == 1
            with pytest.raises(ServiceRequestFailed) as failure:
                connection.submit("fft", qos_budget=0.05)
            assert failure.value.code == ERROR_UNSUPPORTED
            # Fixed-config service is unaffected by the pin.
            serial = qos_error(
                RunKey(spec=FFT, config=MEDIUM, fault_seed=12, workload_seed=0)
            )
            assert connection.submit("fft", "medium", fault_seed=12).qos == serial

    def test_budget_through_fleet_of_v1_nodes_fails_clean(self, tmp_path):
        """A budget item relayed to a protocol-1 node comes back as a
        structured unsupported_op error — not a hang, not a crash."""
        servers = [
            _make_server(tmp_path, f"v1-{index}", max_protocol=1)
            for index in range(2)
        ]
        coordinator = FabricCoordinator(
            FabricConfig(
                nodes=tuple("%s:%d" % server.address for server in servers),
                host="127.0.0.1",
                port=0,
            )
        )
        coordinator.start()
        try:
            host, port = coordinator.address
            with ServiceClient(host, port) as connection:
                with pytest.raises(ServiceRequestFailed) as failure:
                    connection.submit("fft", qos_budget=0.05)
                assert failure.value.code == ERROR_UNSUPPORTED
                serial = qos_error(
                    RunKey(spec=FFT, config=MEDIUM, fault_seed=13, workload_seed=0)
                )
                assert connection.submit("fft", "medium", fault_seed=13).qos == serial
        finally:
            coordinator.initiate_drain()
            coordinator.drain(timeout=10)
            coordinator.stop()
            for server in servers:
                _stop(server)
            harness.clear_caches()


class TestTunerStateReplication:
    def test_budget_traffic_replicates_state_to_successor(self, tmp_path):
        servers = [_make_server(tmp_path, f"v2-{index}") for index in range(2)]
        coordinator = FabricCoordinator(
            FabricConfig(
                nodes=tuple("%s:%d" % server.address for server in servers),
                host="127.0.0.1",
                port=0,
            )
        )
        coordinator.start()
        try:
            host, port = coordinator.address
            with ServiceClient(host, port) as connection:
                results = [
                    connection.submit("fft", qos_budget=0.1) for _ in range(3)
                ]
                metrics = connection.metrics()["counters"]
            assert metrics.get("fabric.replicated_tuner_states", 0) >= 1
            assert metrics.get("tuner.state_installs", 0) >= 1
            # The standby's adopted snapshot is pullable by digest and
            # parses back to the exact state the home node served.
            digest = results[-1].tuner["state_digest"]
            payloads = []
            for server in servers:
                with ServiceClient(*server.address) as node:
                    entry = node.store_pull(digest)
                    if entry is not None:
                        payloads.append(entry)
            assert payloads, "no node holds the final tuner state"
            for payload in payloads:
                assert payload["kind"] == TUNER_STATE_KIND
                state = TunerState.from_payload(payload)
                assert state.digest == digest
        finally:
            coordinator.initiate_drain()
            coordinator.drain(timeout=10)
            coordinator.stop()
            for server in servers:
                _stop(server)
            harness.clear_caches()

    def test_state_pushes_round_through_public_client(self, v2_server, tmp_path):
        host, port = v2_server.address
        with ServiceClient(host, port) as connection:
            answer = connection.submit("fft", qos_budget=0.09)
            digest = answer.tuner["state_digest"]
            payload = connection.store_pull(digest)
            assert payload is not None and payload["kind"] == TUNER_STATE_KIND

        target = _make_server(tmp_path, "push-target")
        try:
            with ServiceClient(*target.address) as node:
                assert node.store_push(payload)
                assert node.store_pull(digest) == payload
        finally:
            _stop(target)
