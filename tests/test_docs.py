"""Docs drift checks: links resolve, documented CLI surface exists.

Documentation rots silently — a renamed flag or moved file breaks no
unit test.  These checks tie the markdown docs to the code:

* every relative link and backticked repo path in the docs points at a
  file that exists;
* every ``repro <subcommand>`` and ``--flag`` shown in a fenced shell
  block is accepted by :func:`repro.cli.build_parser`.

The CI docs lane runs these plus ``pytest --doctest-glob='*.md'`` so
the ``>>>`` examples in OBSERVABILITY.md stay executable.
"""

import argparse
import os
import re

import pytest

from repro.cli import build_parser

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# The user-facing docs; PAPER/PAPERS/SNIPPETS/ISSUE/CHANGES are
# generated inputs or logs, not maintained documentation.
DOC_FILES = [
    "README.md",
    "TUTORIAL.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "OBSERVABILITY.md",
    "SERVICE.md",
    "FABRIC.md",
    "RECOVERY.md",
    "ANALYSIS.md",
    "ROADMAP.md",
]

_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)[^)]*\)")
_REPO_PATH = re.compile(r"`((?:src|tests|benchmarks)/[A-Za-z0-9_./-]+)`")
_SHELL_REPRO = re.compile(r"^(?:\$\s*)?python -m repro +([a-z][a-z0-9-]*)(.*)")
_FLAG = re.compile(r"(--[a-z][a-z-]*)")


def _read(name):
    with open(os.path.join(REPO_ROOT, name), encoding="utf-8") as handle:
        return handle.read()


def _fenced_shell_lines(text):
    """Command lines inside fenced code blocks (continuations joined)."""
    lines = []
    in_fence = False
    for raw in text.splitlines():
        stripped = raw.strip()
        if stripped.startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            lines.append(stripped)
    # Join backslash continuations so flags on wrapped lines are seen.
    joined, pending = [], ""
    for line in lines:
        if line.endswith("\\"):
            pending += line[:-1] + " "
        else:
            joined.append(pending + line)
            pending = ""
    if pending:
        joined.append(pending)
    return joined


def _subcommands():
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    raise AssertionError("CLI parser has no subcommands")


@pytest.mark.parametrize("name", DOC_FILES)
def test_doc_exists(name):
    assert os.path.isfile(os.path.join(REPO_ROOT, name)), f"{name} is missing"


@pytest.mark.parametrize("name", DOC_FILES)
def test_relative_links_resolve(name):
    text = _read(name)
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not os.path.exists(os.path.join(REPO_ROOT, target)):
            broken.append(target)
    assert not broken, f"{name}: broken relative links: {broken}"


@pytest.mark.parametrize("name", DOC_FILES)
def test_backticked_repo_paths_exist(name):
    text = _read(name)
    missing = []
    for path in _REPO_PATH.findall(text):
        # `src/repro/foo.py:12` style references carry a line suffix.
        bare = path.split(":")[0].rstrip("/")
        if not os.path.exists(os.path.join(REPO_ROOT, bare)):
            missing.append(path)
    assert not missing, f"{name}: references to nonexistent paths: {missing}"


@pytest.mark.parametrize("name", DOC_FILES)
def test_documented_cli_surface_exists(name):
    subcommands = _subcommands()
    problems = []
    for line in _fenced_shell_lines(_read(name)):
        match = _SHELL_REPRO.search(line)
        if not match:
            continue
        command, rest = match.group(1), match.group(2)
        if command not in subcommands:
            problems.append(f"unknown subcommand {command!r} in: {line}")
            continue
        known = {
            option
            for action in subcommands[command]._actions
            for option in action.option_strings
        }
        for flag in _FLAG.findall(rest):
            if flag not in known:
                problems.append(f"{command} does not accept {flag}: {line}")
    assert not problems, f"{name}:\n" + "\n".join(problems)


def test_analysis_lint_catalog_matches_doc():
    """ANALYSIS.md documents every lint code with its meaning."""
    from repro.analysis import LINT_CODES
    from repro.analysis.report import PAYLOAD_VERSION

    text = _read("ANALYSIS.md")
    for code in LINT_CODES:
        assert f"`{code}`" in text, f"lint code {code} undocumented"
    assert f"`\"version\": {PAYLOAD_VERSION}`" in text or (
        f"version {PAYLOAD_VERSION}" in text
    ), "payload version undocumented"


def test_service_protocol_catalog_matches_doc():
    """SERVICE.md documents every daemon op, error code and metric name
    (including the protocol-2 ``tuner.*`` series) — the wire-protocol
    spec cannot drift from the code."""
    from repro.service.protocol import (
        ERROR_CODES,
        MESSAGE_TYPES,
        METRIC_NAMES,
        PROTOCOL_VERSION,
    )

    text = _read("SERVICE.md")
    for op in MESSAGE_TYPES:
        assert f"`{op}`" in text, f"service op {op} undocumented"
    for code in ERROR_CODES:
        assert f"`{code}`" in text, f"service error code {code} undocumented"
    for metric in METRIC_NAMES:
        assert f"`{metric}`" in text, f"service metric {metric} undocumented"
    assert (
        f"protocol version {PROTOCOL_VERSION}" in text
        or f"`\"protocol\": {PROTOCOL_VERSION}`" in text
    ), "service protocol version undocumented"


def test_fabric_protocol_catalog_matches_doc():
    """FABRIC.md documents every fabric message type, error code and
    metric name — the wire-protocol spec cannot drift from the code."""
    from repro.fabric.protocol import (
        ERROR_CODES,
        FABRIC_PROTOCOL_VERSION,
        MESSAGE_TYPES,
        METRIC_NAMES,
    )

    text = _read("FABRIC.md")
    for op in MESSAGE_TYPES:
        assert f"`{op}`" in text, f"fabric op {op} undocumented"
    for code in ERROR_CODES:
        assert f"`{code}`" in text, f"fabric error code {code} undocumented"
    for metric in METRIC_NAMES:
        assert f"`{metric}`" in text, f"fabric metric {metric} undocumented"
    assert (
        f"protocol version {FABRIC_PROTOCOL_VERSION}" in text
        or f"`\"protocol\": {FABRIC_PROTOCOL_VERSION}`" in text
    ), "fabric protocol version undocumented"


def test_recovery_catalog_matches_doc():
    """RECOVERY.md documents every recover mode, metric name and
    registered acceptability check — and the recovery series rides the
    daemon's metric catalog so SERVICE.md inherits it too."""
    from repro.recovery.catalog import RECOVERY_METRIC_NAMES, RECOVERY_MODES
    from repro.recovery.checks import _CHECKS
    from repro.service.protocol import METRIC_NAMES

    text = _read("RECOVERY.md")
    for mode in RECOVERY_MODES:
        assert f'"{mode}"' in text or f"`{mode}`" in text or (
            mode in text
        ), f"recover mode {mode} undocumented"
    for metric in RECOVERY_METRIC_NAMES:
        assert f"`{metric}`" in text, f"recovery metric {metric} undocumented"
        assert metric in METRIC_NAMES, (
            f"recovery metric {metric} missing from the daemon catalog"
        )
    for app in _CHECKS:
        assert app in text.lower(), f"check for {app} undocumented"


def test_observability_schema_constants_match_doc():
    """OBSERVABILITY.md documents every component and event kind."""
    from repro.observability import COMPONENTS, EVENT_KINDS, SCHEMA_VERSION

    text = _read("OBSERVABILITY.md")
    assert f"`\"v\": {SCHEMA_VERSION}`" in text or f"version {SCHEMA_VERSION}" in text
    for component in COMPONENTS:
        assert f"`{component}`" in text, f"component {component} undocumented"
    for kind in EVENT_KINDS:
        assert f"`{kind}`" in text, f"event kind {kind} undocumented"
