"""Integration tests: check → instrument → execute on the simulator."""

import textwrap

import pytest

from repro.core.pipeline import compile_program
from repro.errors import TypeCheckError
from repro.hardware import AGGRESSIVE, BASELINE, MEDIUM, MILD
from repro.runtime import Simulator

PRELUDE = "from repro import Approx, Precise, Top, Context, approximable, endorse\n"


def compile_src(source: str, name: str = "m"):
    return compile_program({name: PRELUDE + textwrap.dedent(source)})


MEAN = """
    def mean(n: int) -> float:
        nums: list[Approx[float]] = [0.0] * n
        for i in range(n):
            nums[i] = 1.0 * i
        total: Approx[float] = 0.0
        for i in range(n):
            total = total + nums[i]
        return endorse(total / n)
"""


class TestBasicExecution:
    def test_baseline_preserves_semantics(self):
        program = compile_src(MEAN)
        with Simulator(BASELINE, seed=0):
            assert program.call("m", "mean", 100) == 49.5

    def test_rejects_ill_typed_program(self):
        with pytest.raises(TypeCheckError) as exc_info:
            compile_src(
                """
                def f() -> int:
                    a: Approx[int] = 1
                    return a
                """
            )
        assert exc_info.value.diagnostics

    def test_aggressive_execution_differs(self):
        program = compile_src(MEAN)
        with Simulator(BASELINE, seed=1):
            precise = program.call("m", "mean", 200)
        outputs = []
        for seed in range(5):
            with Simulator(AGGRESSIVE, seed=seed):
                outputs.append(program.call("m", "mean", 200))
        assert any(out != precise for out in outputs)

    def test_runs_are_reproducible(self):
        program = compile_src(MEAN)

        def run(seed):
            with Simulator(AGGRESSIVE, seed=seed):
                return program.call("m", "mean", 100)

        assert run(3) == run(3)

    def test_statistics_collected(self):
        program = compile_src(MEAN)
        with Simulator(MEDIUM, seed=0) as sim:
            program.call("m", "mean", 50)
        stats = sim.stats()
        assert stats.fp_ops_approx > 0
        assert stats.int_ops_precise > 0  # loop induction
        assert stats.endorsements == 1
        assert stats.dram_approx_byte_ticks > 0
        assert 0 < stats.fp_approx_fraction <= 1


class TestForEachIteration:
    def test_foreach_over_approx_array_loads_via_dram(self):
        program = compile_src(
            """
            def total(n: int) -> float:
                data: list[Approx[float]] = [0.0] * n
                for i in range(n):
                    data[i] = 1.0 * i
                acc: Approx[float] = 0.0
                for v in data:
                    acc = acc + v
                return endorse(acc)
            """
        )
        with Simulator(BASELINE, seed=0) as sim:
            assert program.call("m", "total", 10) == 45.0
        # Each iterated element is a simulated DRAM load.
        assert sim.dram.approx_reads == 10


class TestEndorsementAndConditions:
    def test_endorsed_condition_runs(self):
        program = compile_src(
            """
            def count_above(n: int, threshold: float) -> int:
                data: list[Approx[float]] = [0.0] * n
                for i in range(n):
                    data[i] = 1.0 * i
                count: int = 0
                for i in range(n):
                    if endorse(data[i] > threshold):
                        count = count + 1
                return count
            """
        )
        with Simulator(BASELINE, seed=0) as sim:
            assert program.call("m", "count_above", 10, 4.5) == 5
        assert sim.stats().endorsements == 10


class TestApproximableExecution:
    FLOATSET = """
        @approximable
        class FloatSet:
            nums: Context[list[float]]

            def __init__(self, n: int) -> None:
                data: Context[list[float]] = [0.0] * n
                for i in range(n):
                    data[i] = 1.0 * i
                self.nums = data

            def mean(self) -> float:
                total: float = 0.0
                for i in range(len(self.nums)):
                    total = total + self.nums[i]
                return total / len(self.nums)

            def mean_APPROX(self) -> Approx[float]:
                total: Approx[float] = 0.0
                for i in range(0, len(self.nums), 2):
                    total = total + self.nums[i]
                return 2 * total / len(self.nums)

        def precise_mean(n: int) -> float:
            s: FloatSet = FloatSet(n)
            return s.mean()

        def approx_mean(n: int) -> float:
            s: Approx[FloatSet] = FloatSet(n)
            m: Approx[float] = s.mean()
            return endorse(m)
    """

    def test_algorithmic_approximation_dispatch(self):
        # The approximate variant averages only the even-indexed half:
        # for 0..9 that is (0+2+4+6+8)*2/10 = 4.0 versus 4.5 precisely.
        program = compile_src(self.FLOATSET)
        with Simulator(BASELINE, seed=0):
            assert program.call("m", "precise_mean", 10) == 4.5
            assert program.call("m", "approx_mean", 10) == 4.0

    def test_plain_python_execution_ignores_annotations(self):
        # Backward compatibility: the same source runs unmodified as
        # plain Python and always uses the precise implementation.
        namespace = {}
        exec(PRELUDE + textwrap.dedent(self.FLOATSET), namespace)
        assert namespace["precise_mean"](10) == 4.5
        assert namespace["approx_mean"](10) == 4.5  # no dispatch

    INTPAIR = """
        @approximable
        class IntPair:
            x: Context[int]
            y: Context[int]
            num_additions: Approx[int]

            def __init__(self, x: Context[int], y: Context[int]) -> None:
                self.x = x
                self.y = y
                self.num_additions = 0

            def add_to_both(self, amount: Context[int]) -> None:
                self.x = self.x + amount
                self.y = self.y + amount
                self.num_additions = self.num_additions + 1

        def use() -> int:
            p: IntPair = IntPair(1, 2)
            p.add_to_both(10)
            return p.x + p.y
    """

    def test_intpair_baseline(self):
        program = compile_src(self.INTPAIR)
        with Simulator(BASELINE, seed=0) as sim:
            assert program.call("m", "use") == 23
        # One object allocated and registered.
        assert sim.stats().allocations == 1


class TestMultiModulePrograms:
    def test_intra_program_import(self):
        helper = PRELUDE + textwrap.dedent(
            """
            def scale(x: Approx[float]) -> Approx[float]:
                return x * 2.0
            """
        )
        main = PRELUDE + textwrap.dedent(
            """
            from helper import scale

            def run() -> float:
                a: Approx[float] = 3.0
                return endorse(scale(a))
            """
        )
        program = compile_program({"helper": helper, "main": main})
        with Simulator(BASELINE, seed=0):
            assert program.call("main", "run") == 6.0

    def test_import_cycle_detected(self):
        from repro.errors import InstrumentationError

        a = PRELUDE + "from b import g\n\ndef f() -> None:\n    pass\n"
        b = PRELUDE + "from a import f\n\ndef g() -> None:\n    pass\n"
        with pytest.raises(InstrumentationError):
            compile_program({"a": a, "b": b})


class TestFaultBehaviour:
    def test_approx_int_divide_by_zero_returns_zero(self):
        program = compile_src(
            """
            def f() -> int:
                a: Approx[int] = 10
                b: Approx[int] = 0
                c: Approx[int] = a // b
                return endorse(c)
            """
        )
        with Simulator(BASELINE, seed=0):
            assert program.call("m", "f") == 0

    def test_approx_float_divide_by_zero_is_nan(self):
        import math

        program = compile_src(
            """
            def f() -> float:
                a: Approx[float] = 10.0
                b: Approx[float] = 0.0
                c: Approx[float] = a / b
                return endorse(c)
            """
        )
        with Simulator(BASELINE, seed=0):
            assert math.isnan(program.call("m", "f"))

    def test_precise_divide_by_zero_still_raises(self):
        program = compile_src(
            """
            def f() -> int:
                a: int = 10
                b: int = 0
                return a // b
            """
        )
        with Simulator(BASELINE, seed=0):
            with pytest.raises(ZeroDivisionError):
                program.call("m", "f")

    def test_mantissa_truncation_visible_at_medium(self):
        program = compile_src(
            """
            def f() -> float:
                a: Approx[float] = 1.0
                b: Approx[float] = 0.00001
                c: Approx[float] = a + b
                return endorse(c)
            """
        )
        import dataclasses

        quiet = dataclasses.replace(MEDIUM, timing_error_prob=0.0, sram_read_upset=0.0,
                                    sram_write_failure=0.0, name="quiet")
        with Simulator(quiet, seed=0):
            # 8 mantissa bits cannot represent 1.00001.
            assert program.call("m", "f") == 1.0

    def test_mild_mean_error_small(self):
        program = compile_src(MEAN)
        with Simulator(BASELINE, seed=0):
            precise = program.call("m", "mean", 100)
        errors = []
        for seed in range(10):
            with Simulator(MILD, seed=seed):
                approx = program.call("m", "mean", 100)
            errors.append(abs(approx - precise) / abs(precise))
        assert sum(errors) / len(errors) < 0.05


class TestApproxUpcast:
    def test_upcast_forces_approx_operator(self):
        source = PRELUDE + textwrap.dedent(
            """
            def f() -> float:
                b: float = 1.0
                c: float = 2.0
                x: float = endorse(Approx(b) + c)
                return x
            """
        )
        program = compile_program({"m": source})
        with Simulator(BASELINE, seed=0) as sim:
            assert program.call("m", "f") == 3.0
        assert sim.stats().fp_ops_approx == 1
