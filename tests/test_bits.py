"""Tests for bit-level value representations used by the fault models.

The scalar helpers are the reference semantics; the ``*_lanes`` vector
helpers (and :func:`bits.truncate_mantissa_array`, the batch FPU's
array-form core) must match them bit for bit on every lane, with or
without numpy — :class:`TestLaneHelpers` pins both paths against the
scalar loop.
"""

import contextlib
import math

from hypothesis import given
from hypothesis import strategies as st

from repro.hardware import bits

from tests.conftest import HAVE_NUMPY

int32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestIntEncoding:
    @given(int32s)
    def test_roundtrip(self, value):
        assert bits.bits_to_int(bits.int_to_bits(value)) == value

    def test_wraps_to_32_bits(self):
        assert bits.bits_to_int(bits.int_to_bits(2**31)) == -(2**31)
        assert bits.bits_to_int(bits.int_to_bits(-(2**31) - 1)) == 2**31 - 1

    @given(int32s, st.integers(min_value=0, max_value=31))
    def test_flip_is_involution(self, value, bit):
        flipped = bits.flip_bit_int(value, bit)
        assert bits.flip_bit_int(flipped, bit) == value
        assert flipped != value


class TestFloatEncoding:
    @given(floats)
    def test_float32_roundtrip(self, value):
        assert bits.bits32_to_float(bits.float_to_bits32(value)) == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float64_roundtrip(self, value):
        assert bits.bits64_to_float(bits.float_to_bits64(value)) == value

    def test_overflowing_float32_saturates_to_infinity(self):
        pattern = bits.float_to_bits32(1e300)
        assert math.isinf(bits.bits32_to_float(pattern))
        pattern = bits.float_to_bits32(-1e300)
        result = bits.bits32_to_float(pattern)
        assert math.isinf(result) and result < 0

    @given(floats, st.integers(min_value=0, max_value=31))
    def test_float_flip_changes_pattern(self, value, bit):
        flipped = bits.flip_bit_float(value, bit)
        assert bits.float_to_bits32(flipped) != bits.float_to_bits32(value)


class TestMantissaTruncation:
    def test_full_width_is_identity_for_float32_values(self):
        value = bits.bits32_to_float(bits.float_to_bits32(3.14159))
        assert bits.truncate_mantissa(value, 24) == value

    def test_truncation_reduces_precision(self):
        value = 1.0 + 2**-20  # needs 20 mantissa bits
        assert bits.truncate_mantissa(value, 8) == 1.0

    def test_truncation_keeps_high_bits(self):
        value = 1.5  # one mantissa bit
        assert bits.truncate_mantissa(value, 4) == 1.5

    def test_special_values_pass_through(self):
        assert math.isnan(bits.truncate_mantissa(math.nan, 4))
        assert math.isinf(bits.truncate_mantissa(math.inf, 4))
        assert bits.truncate_mantissa(0.0, 4) == 0.0
        assert bits.truncate_mantissa(-0.0, 4) == 0.0

    @given(floats, st.integers(min_value=1, max_value=23))
    def test_idempotent(self, value, keep):
        once = bits.truncate_mantissa(value, keep)
        assert bits.truncate_mantissa(once, keep) == once

    @given(floats, st.integers(min_value=1, max_value=23))
    def test_error_bounded_by_relative_precision(self, value, keep):
        truncated = bits.truncate_mantissa(value, keep)
        if abs(value) >= 2.0**-126 and not math.isinf(truncated):
            # For normal numbers, dropping mantissa bits changes the
            # value by at most one part in 2^(keep-1).  (Subnormals have
            # no hidden leading one, so the relative bound does not
            # apply to them.)
            assert abs(truncated - value) <= abs(value) * 2.0 ** -(keep - 1)

    @given(st.floats(allow_nan=False, allow_infinity=False), st.integers(min_value=1, max_value=51))
    def test_double_truncation_idempotent(self, value, keep):
        once = bits.truncate_mantissa(value, keep, double=True)
        assert bits.truncate_mantissa(once, keep, double=True) == once

    def test_sign_preserved(self):
        assert bits.truncate_mantissa(-3.75, 8) < 0


class TestValueCodec:
    def test_bool_kind(self):
        assert bits.value_to_bits(True, "bool") == 1
        assert bits.bits_to_value(0, "bool") is False
        assert bits.bits_for_kind("bool") == 1

    @given(int32s)
    def test_int_kind_roundtrip(self, value):
        assert bits.bits_to_value(bits.value_to_bits(value, "int"), "int") == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_double_kind_roundtrip(self, value):
        assert bits.bits_to_value(bits.value_to_bits(value, "double"), "double") == value

    def test_widths(self):
        assert bits.bits_for_kind("int") == 32
        assert bits.bits_for_kind("float") == 32
        assert bits.bits_for_kind("double") == 64


# ----------------------------------------------------------------------
# Vector (lane) helpers vs the scalar reference
# ----------------------------------------------------------------------

# Lane values may be NaN or infinity mid-run (faulted floats), so the
# lane strategies include them and comparisons go through bit patterns.
lane_floats = st.lists(
    st.floats(allow_nan=True, allow_infinity=True, width=32), min_size=1, max_size=8
)
lane_doubles = st.lists(
    st.floats(allow_nan=True, allow_infinity=True), min_size=1, max_size=8
)
lane_ints = st.lists(int32s, min_size=1, max_size=8)


def _f64_patterns(values):
    return [bits.float_to_bits64(value) for value in values]


@contextlib.contextmanager
def _without_numpy():
    """Force the lanes helpers down their pure-Python scalar loop."""
    saved = bits._np
    bits._np = None
    try:
        yield
    finally:
        bits._np = saved


class TestLaneHelpers:
    @given(st.data())
    def test_flip_bit_int_lanes_matches_scalar(self, data):
        values = data.draw(lane_ints)
        positions = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=31),
                min_size=len(values),
                max_size=len(values),
            )
        )
        expected = [bits.flip_bit_int(v, b) for v, b in zip(values, positions)]
        assert bits.flip_bit_int_lanes(values, positions) == expected
        # Involution through the vector path as well.
        assert bits.flip_bit_int_lanes(expected, positions) == values

    @given(st.data(), st.booleans())
    def test_flip_bit_float_lanes_matches_scalar(self, data, double):
        values = data.draw(lane_doubles if double else lane_floats)
        width = 64 if double else 32
        positions = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=width - 1),
                min_size=len(values),
                max_size=len(values),
            )
        )
        expected = [bits.flip_bit_float(v, b, double) for v, b in zip(values, positions)]
        flipped = bits.flip_bit_float_lanes(values, positions, double)
        assert _f64_patterns(flipped) == _f64_patterns(expected)

    @given(lane_ints)
    def test_int_codec_lanes_roundtrip(self, values):
        patterns = bits.value_to_bits_lanes(values, "int")
        assert patterns == [bits.value_to_bits(v, "int") for v in values]
        assert bits.bits_to_value_lanes(patterns, "int") == values

    @given(st.lists(st.booleans(), min_size=1, max_size=8))
    def test_bool_codec_lanes_roundtrip(self, values):
        patterns = bits.value_to_bits_lanes(values, "bool")
        assert patterns == [1 if v else 0 for v in values]
        assert bits.bits_to_value_lanes(patterns, "bool") == values

    @given(st.data(), st.sampled_from(["float", "double"]))
    def test_float_codec_lanes_match_scalar(self, data, kind):
        values = data.draw(lane_doubles if kind == "double" else lane_floats)
        patterns = bits.value_to_bits_lanes(values, kind)
        assert patterns == [bits.value_to_bits(v, kind) for v in values]
        decoded = bits.bits_to_value_lanes(patterns, kind)
        expected = [bits.bits_to_value(p, kind) for p in patterns]
        assert _f64_patterns(decoded) == _f64_patterns(expected)

    @given(st.data(), st.booleans(), st.integers(min_value=0, max_value=52))
    def test_truncate_mantissa_lanes_matches_scalar(self, data, double, keep):
        values = data.draw(lane_doubles if double else lane_floats)
        expected = [bits.truncate_mantissa(v, keep, double) for v in values]
        truncated = bits.truncate_mantissa_lanes(values, keep, double)
        assert _f64_patterns(truncated) == _f64_patterns(expected)
        # Idempotence holds lane-wise too.
        again = bits.truncate_mantissa_lanes(truncated, keep, double)
        assert _f64_patterns(again) == _f64_patterns(truncated)

    @given(st.data(), st.booleans(), st.integers(min_value=0, max_value=52))
    def test_truncate_mantissa_array_matches_scalar(self, data, double, keep):
        if not HAVE_NUMPY:
            return  # the array core explicitly requires numpy
        values = data.draw(lane_doubles if double else lane_floats)
        out = bits.truncate_mantissa_array(values, keep, double)
        expected = [bits.truncate_mantissa(v, keep, double) for v in values]
        assert _f64_patterns(out.tolist()) == _f64_patterns(expected)

    @given(st.data(), st.booleans(), st.integers(min_value=0, max_value=52))
    def test_lanes_helpers_identical_without_numpy(self, data, double, keep):
        """The numpy and scalar-loop paths are interchangeable bit for bit."""
        values = data.draw(lane_doubles if double else lane_floats)
        positions = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=(64 if double else 32) - 1),
                min_size=len(values),
                max_size=len(values),
            )
        )
        with_np = {
            "trunc": bits.truncate_mantissa_lanes(values, keep, double),
            "flip": bits.flip_bit_float_lanes(values, positions, double),
            "codec": bits.value_to_bits_lanes(values, "double" if double else "float"),
        }
        with _without_numpy():
            without_np = {
                "trunc": bits.truncate_mantissa_lanes(values, keep, double),
                "flip": bits.flip_bit_float_lanes(values, positions, double),
                "codec": bits.value_to_bits_lanes(
                    values, "double" if double else "float"
                ),
            }
        assert _f64_patterns(with_np["trunc"]) == _f64_patterns(without_np["trunc"])
        assert _f64_patterns(with_np["flip"]) == _f64_patterns(without_np["flip"])
        assert with_np["codec"] == without_np["codec"]
