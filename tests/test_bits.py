"""Tests for bit-level value representations used by the fault models."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.hardware import bits

int32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)
floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestIntEncoding:
    @given(int32s)
    def test_roundtrip(self, value):
        assert bits.bits_to_int(bits.int_to_bits(value)) == value

    def test_wraps_to_32_bits(self):
        assert bits.bits_to_int(bits.int_to_bits(2**31)) == -(2**31)
        assert bits.bits_to_int(bits.int_to_bits(-(2**31) - 1)) == 2**31 - 1

    @given(int32s, st.integers(min_value=0, max_value=31))
    def test_flip_is_involution(self, value, bit):
        flipped = bits.flip_bit_int(value, bit)
        assert bits.flip_bit_int(flipped, bit) == value
        assert flipped != value


class TestFloatEncoding:
    @given(floats)
    def test_float32_roundtrip(self, value):
        assert bits.bits32_to_float(bits.float_to_bits32(value)) == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_float64_roundtrip(self, value):
        assert bits.bits64_to_float(bits.float_to_bits64(value)) == value

    def test_overflowing_float32_saturates_to_infinity(self):
        pattern = bits.float_to_bits32(1e300)
        assert math.isinf(bits.bits32_to_float(pattern))
        pattern = bits.float_to_bits32(-1e300)
        result = bits.bits32_to_float(pattern)
        assert math.isinf(result) and result < 0

    @given(floats, st.integers(min_value=0, max_value=31))
    def test_float_flip_changes_pattern(self, value, bit):
        flipped = bits.flip_bit_float(value, bit)
        assert bits.float_to_bits32(flipped) != bits.float_to_bits32(value)


class TestMantissaTruncation:
    def test_full_width_is_identity_for_float32_values(self):
        value = bits.bits32_to_float(bits.float_to_bits32(3.14159))
        assert bits.truncate_mantissa(value, 24) == value

    def test_truncation_reduces_precision(self):
        value = 1.0 + 2**-20  # needs 20 mantissa bits
        assert bits.truncate_mantissa(value, 8) == 1.0

    def test_truncation_keeps_high_bits(self):
        value = 1.5  # one mantissa bit
        assert bits.truncate_mantissa(value, 4) == 1.5

    def test_special_values_pass_through(self):
        assert math.isnan(bits.truncate_mantissa(math.nan, 4))
        assert math.isinf(bits.truncate_mantissa(math.inf, 4))
        assert bits.truncate_mantissa(0.0, 4) == 0.0
        assert bits.truncate_mantissa(-0.0, 4) == 0.0

    @given(floats, st.integers(min_value=1, max_value=23))
    def test_idempotent(self, value, keep):
        once = bits.truncate_mantissa(value, keep)
        assert bits.truncate_mantissa(once, keep) == once

    @given(floats, st.integers(min_value=1, max_value=23))
    def test_error_bounded_by_relative_precision(self, value, keep):
        truncated = bits.truncate_mantissa(value, keep)
        if abs(value) >= 2.0**-126 and not math.isinf(truncated):
            # For normal numbers, dropping mantissa bits changes the
            # value by at most one part in 2^(keep-1).  (Subnormals have
            # no hidden leading one, so the relative bound does not
            # apply to them.)
            assert abs(truncated - value) <= abs(value) * 2.0 ** -(keep - 1)

    @given(st.floats(allow_nan=False, allow_infinity=False), st.integers(min_value=1, max_value=51))
    def test_double_truncation_idempotent(self, value, keep):
        once = bits.truncate_mantissa(value, keep, double=True)
        assert bits.truncate_mantissa(once, keep, double=True) == once

    def test_sign_preserved(self):
        assert bits.truncate_mantissa(-3.75, 8) < 0


class TestValueCodec:
    def test_bool_kind(self):
        assert bits.value_to_bits(True, "bool") == 1
        assert bits.bits_to_value(0, "bool") is False
        assert bits.bits_for_kind("bool") == 1

    @given(int32s)
    def test_int_kind_roundtrip(self, value):
        assert bits.bits_to_value(bits.value_to_bits(value, "int"), "int") == value

    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_double_kind_roundtrip(self, value):
        assert bits.bits_to_value(bits.value_to_bits(value, "double"), "double") == value

    def test_widths(self):
        assert bits.bits_for_kind("int") == 32
        assert bits.bits_for_kind("float") == 32
        assert bits.bits_for_kind("double") == 64
