"""Differential harness pinning the batch engine against serial runs.

The batch fault-injection engine's one promise is *bit-identity*:
``batch(N)`` over a fault-seed vector must equal N serial runs —
identical faulted bit patterns (the draw streams), identical trace
event streams, identical energy accounting and identical QoS — with
batching changing only the cost of a campaign, never its results.

Three layers of evidence, cheapest first:

1. **Draw streams** — randomized programs of fault-draw primitives
   (hypothesis, :mod:`tests.strategies`) replayed against a per-lane
   :class:`FaultRandom` oracle, on both engines; plus the pinned coin
   edge-case contract (NaN / non-positive / saturated probabilities)
   shared by the scalar and batch sources.
2. **Whole runs** — outputs, stats, energy breakdowns and traced event
   streams of batched executions compared field-for-field (floats by
   bit pattern, so NaN-bearing outputs compare exactly) against serial
   runs of the same keys, including the fallback paths (load-elision
   configs, lane divergence) and the degenerate ``batch=1``.
3. **Campaign plumbing** — ``mean_qos``/executor grids with ``batch``
   set, and slow-lane sweeps: the full 9-app x 3-level grid and a
   fuzz lane drawing random (app, level, seed-vector) campaigns.
"""

import json
import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import ALL_APPS, app_by_name
from repro.energy import estimate_energy
from repro.errors import SimulationError
from repro.experiments.executor import Job, run_jobs
from repro.experiments.harness import (
    compiled_app,
    mean_qos,
    precise_output,
    run_key,
    run_keys_batch,
)
from repro.experiments.runkey import RunKey
from repro.hardware.config import AGGRESSIVE, MEDIUM, MILD, SOFTWARE
from repro.hardware.lanes import LaneDivergenceError
from repro.hardware.rng import BatchFaultRandom, FaultRandom
from repro.observability.runner import traced_run, traced_runs_batch
from repro.runtime.batch import BatchSimulator

from tests import strategies as batch_strategies
from tests.conftest import BATCH_ENGINES, requires_numpy

LEVELS = [
    pytest.param(MILD, id="mild"),
    pytest.param(MEDIUM, id="medium"),
    pytest.param(AGGRESSIVE, id="aggressive"),
]


def canon(value):
    """A bit-exact comparison key: floats by their binary64 pattern.

    ``==`` is the wrong comparator for differential runs — NaN outputs
    would compare unequal to themselves and ``-0.0 == 0.0`` would mask
    a sign flip — so every float is compared by its packed bytes.
    """
    if isinstance(value, float):
        return ("f64", struct.pack("<d", value))
    if isinstance(value, (list, tuple)):
        return tuple(canon(item) for item in value)
    if isinstance(value, dict):
        return {key: canon(item) for key, item in value.items()}
    return value


def assert_results_identical(serial, batch, context=""):
    assert len(serial) == len(batch), context
    for lane, (expected, got) in enumerate(zip(serial, batch)):
        assert canon(expected.output) == canon(got.output), f"{context} lane {lane} output"
        assert expected.stats == got.stats, f"{context} lane {lane} stats"


_SERIAL_CACHE = {}


def serial_results(spec, config, fault_seeds):
    """Serial :func:`run_key` results, memoized across parametrizations."""
    results = []
    for seed in fault_seeds:
        cache_key = (spec.name, config.name, seed)
        if cache_key not in _SERIAL_CACHE:
            _SERIAL_CACHE[cache_key] = run_key(
                RunKey(spec=spec, config=config, fault_seed=seed, workload_seed=0)
            )
        results.append(_SERIAL_CACHE[cache_key])
    return results


def campaign_keys(spec, config, fault_seeds):
    return [
        RunKey(spec=spec, config=config, fault_seed=seed, workload_seed=0)
        for seed in fault_seeds
    ]


# ----------------------------------------------------------------------
# Layer 1: draw streams (BatchFaultRandom vs per-lane FaultRandom)
# ----------------------------------------------------------------------


def _replay_op(op, batch, oracles):
    """One program op on both sources; returns (batch_value, oracle_value)."""
    name, lanes, *args = op
    selected = range(len(oracles)) if lanes is None else lanes
    if name == "coin":
        return batch.coin(args[0], lanes), [oracles[lane].coin(args[0]) for lane in selected]
    if name == "coin_fired":
        return (
            tuple(batch.coin_fired(args[0], lanes)),
            tuple(lane for lane in selected if oracles[lane].coin(args[0])),
        )
    if name == "bit_index":
        return batch.bit_index(args[0], lanes), [
            oracles[lane].bit_index(args[0]) for lane in selected
        ]
    if name == "bits":
        return batch.bits(args[0], lanes), [oracles[lane].bits(args[0]) for lane in selected]
    if name == "uniform":
        low, high = args
        return (
            canon(list(batch.uniform(low, high, lanes))),
            canon([oracles[lane].uniform(low, high) for lane in selected]),
        )
    assert name == "binomial"
    trials, probability = args
    oracle_hits = {}
    for lane in selected:
        hits = oracles[lane].binomial_hits(trials, probability)
        if hits:
            oracle_hits[lane] = hits
    return dict(batch.binomial_hits(trials, probability, lanes)), oracle_hits


class TestDrawStreams:
    @pytest.mark.parametrize("engine", BATCH_ENGINES)
    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_random_programs_match_serial_oracle(self, engine, data):
        lane_seeds = data.draw(batch_strategies.seed_vectors)
        program = data.draw(batch_strategies.draw_programs(len(lane_seeds)))
        batch = BatchFaultRandom(lane_seeds, engine=engine)
        oracles = [FaultRandom(seed) for seed in lane_seeds]
        for step, op in enumerate(program):
            got, want = _replay_op(op, batch, oracles)
            assert got == want, f"step {step}: {op}"
        # The cursors must agree after the whole program too: one final
        # all-lanes draw proves no lane silently consumed extra words.
        assert canon(list(batch.uniform(0.0, 1.0))) == canon(
            [oracle.uniform(0.0, 1.0) for oracle in oracles]
        )

    @pytest.mark.parametrize("engine", BATCH_ENGINES)
    def test_spawn_matches_serial_derivation(self, engine):
        lane_seeds = [7, 99, 2**31]
        child = BatchFaultRandom(lane_seeds, engine=engine).spawn("fpu")
        oracles = [FaultRandom(seed).spawn("fpu") for seed in lane_seeds]
        assert child.bits(32) == [oracle.bits(32) for oracle in oracles]
        assert canon(list(child.uniform(0.0, 1.0))) == canon(
            [oracle.uniform(0.0, 1.0) for oracle in oracles]
        )

    @pytest.mark.parametrize("engine", BATCH_ENGINES)
    def test_desync_then_lockstep_draws_stay_aligned(self, engine):
        # A subset draw desynchronises the lane cursors; later all-lane
        # draws must still produce each lane's own serial stream.
        lane_seeds = [1, 2, 3, 4]
        batch = BatchFaultRandom(lane_seeds, engine=engine)
        oracles = [FaultRandom(seed) for seed in lane_seeds]
        batch.bits(8, lanes=(2,))
        oracles[2].bits(8)
        for _ in range(3):
            assert canon(list(batch.uniform(0.0, 1.0))) == canon(
                [oracle.uniform(0.0, 1.0) for oracle in oracles]
            )


# ----------------------------------------------------------------------
# Layer 1b: the coin edge-case contract, scalar and batch alike
# ----------------------------------------------------------------------

COIN_SOURCES = [
    pytest.param("scalar", id="scalar"),
    pytest.param("batch-python", id="batch-python"),
    pytest.param("batch-numpy", marks=requires_numpy, id="batch-numpy"),
]


def _coin_source(kind):
    """(coin, probe): per-lane coins and a probe consuming one draw/lane."""
    if kind == "scalar":
        source = FaultRandom(123)
        return (
            lambda probability: (source.coin(probability),),
            lambda: canon((source.uniform(0.0, 1.0),)),
        )
    source = BatchFaultRandom([123, 321], engine=kind.split("-")[1])
    return (
        lambda probability: tuple(source.coin(probability)),
        lambda: canon(tuple(source.uniform(0.0, 1.0))),
    )


class TestCoinContract:
    """The pinned FaultRandom.coin edge cases (see its docstring)."""

    @pytest.mark.parametrize("kind", COIN_SOURCES)
    @pytest.mark.parametrize(
        "probability", [0.0, -0.25, float("-inf")], ids=["zero", "negative", "neg-inf"]
    )
    def test_nonpositive_never_fires_and_consumes_no_draw(self, kind, probability):
        coin, probe = _coin_source(kind)
        _, untouched_probe = _coin_source(kind)
        assert not any(coin(probability))
        assert probe() == untouched_probe()

    @pytest.mark.parametrize("kind", COIN_SOURCES)
    @pytest.mark.parametrize(
        "probability", [1.0, 2.0, float("inf")], ids=["one", "two", "inf"]
    )
    def test_saturated_always_fires_and_consumes_no_draw(self, kind, probability):
        coin, probe = _coin_source(kind)
        _, untouched_probe = _coin_source(kind)
        assert all(coin(probability))
        assert probe() == untouched_probe()

    @pytest.mark.parametrize("kind", COIN_SOURCES)
    def test_nan_never_fires_but_consumes_exactly_one_draw(self, kind):
        coin, probe = _coin_source(kind)
        _, reference_probe = _coin_source(kind)
        assert not any(coin(float("nan")))
        reference_probe()  # discard one draw per lane on the reference
        assert probe() == reference_probe()


# ----------------------------------------------------------------------
# Layer 2: whole runs (outputs, stats, energy, traces, fallbacks)
# ----------------------------------------------------------------------

FAST_CASES = [
    pytest.param("fft", MILD, id="fft-mild"),
    pytest.param("fft", AGGRESSIVE, id="fft-aggressive"),
    pytest.param("montecarlo", MILD, id="montecarlo-mild"),  # diverges -> fallback
]


class TestWholeRunDifferential:
    @pytest.mark.parametrize("engine", BATCH_ENGINES)
    @pytest.mark.parametrize("app,config", FAST_CASES)
    def test_batch_matches_serial(self, app, config, engine):
        spec = app_by_name(app)
        seeds = (11, 12, 13)
        serial = serial_results(spec, config, seeds)
        batch = run_keys_batch(campaign_keys(spec, config, seeds), engine=engine)
        assert_results_identical(serial, batch, f"{app}/{config.name}/{engine}")

    def test_energy_accounting_identical(self):
        spec = app_by_name("fft")
        seeds = (11, 12, 13)
        serial = serial_results(spec, MILD, seeds)
        batch = run_keys_batch(campaign_keys(spec, MILD, seeds))
        for expected, got in zip(serial, batch):
            assert estimate_energy(expected.stats, MILD) == estimate_energy(got.stats, MILD)

    def test_batch_of_one_is_exactly_the_serial_path(self):
        key = RunKey(spec=app_by_name("fft"), config=MILD, fault_seed=11, workload_seed=0)
        [batched] = run_keys_batch([key])
        expected = serial_results(key.spec, MILD, (11,))[0]
        assert canon(batched.output) == canon(expected.output)
        assert batched.stats == expected.stats

    def test_mixed_key_blocks_rejected(self):
        spec = app_by_name("fft")
        keys = [
            RunKey(spec=spec, config=MILD, fault_seed=1, workload_seed=0),
            RunKey(spec=spec, config=AGGRESSIVE, fault_seed=2, workload_seed=0),
        ]
        with pytest.raises(ValueError):
            run_keys_batch(keys)

    def test_load_elision_config_is_rejected_then_falls_back(self):
        # SOFTWARE's load elision replays a *stale value*, which a
        # single lockstep execution cannot model; the BatchSimulator
        # refuses it up front and run_keys_batch reruns serially.
        with pytest.raises(SimulationError):
            BatchSimulator(SOFTWARE, [1, 2])
        spec = app_by_name("fft")
        seeds = (5, 6)
        serial = serial_results(spec, SOFTWARE, seeds)
        batch = run_keys_batch(campaign_keys(spec, SOFTWARE, seeds))
        assert_results_identical(serial, batch, "fft/Software fallback")

    def test_divergent_control_flow_raises_inside_batch(self):
        # MonteCarlo branches on approximate data, so its lanes diverge;
        # the raw batched execution must refuse (run_keys_batch then
        # falls back serially, pinned by test_batch_matches_serial).
        spec = app_by_name("montecarlo")
        program = compiled_app(spec)
        with pytest.raises(LaneDivergenceError):
            with BatchSimulator(MILD, [11, 12]):
                program.call(spec.entry_module, spec.entry_function, *spec.workload_args(0))


def _event_key(event):
    return tuple(canon(getattr(event, name)) for name in event.__dataclass_fields__)


class TestTraceDifferential:
    @pytest.mark.parametrize("engine", BATCH_ENGINES)
    def test_event_streams_identical(self, engine):
        spec = app_by_name("fft")
        seeds = [21, 22, 23]
        serial = [traced_run(spec, MILD, seed) for seed in seeds]
        batch = traced_runs_batch(spec, MILD, seeds, engine=engine)
        for expected, got in zip(serial, batch):
            assert expected.stats == got.stats
            assert expected.dropped == got.dropped
            assert expected.metrics.as_dict() == got.metrics.as_dict()
            assert len(expected.events) == len(got.events)
            for left, right in zip(expected.events, got.events):
                assert _event_key(left) == _event_key(right)

    def test_divergent_app_falls_back_to_serial_traces(self):
        spec = app_by_name("montecarlo")
        seeds = [21, 22]
        serial = [traced_run(spec, MILD, seed) for seed in seeds]
        batch = traced_runs_batch(spec, MILD, seeds)
        for expected, got in zip(serial, batch):
            assert expected.stats == got.stats
            assert [_event_key(e) for e in expected.events] == [
                _event_key(e) for e in got.events
            ]


# ----------------------------------------------------------------------
# Layer 3: campaign plumbing (mean_qos, executor grids) and slow sweeps
# ----------------------------------------------------------------------


class TestCampaignPlumbing:
    def test_mean_qos_batch_is_bit_identical(self):
        spec = app_by_name("fft")
        serial = mean_qos(spec, MILD, runs=6)
        for batch in (1, 3, 6, 16):
            assert struct.pack("<d", serial) == struct.pack(
                "<d", mean_qos(spec, MILD, runs=6, batch=batch)
            ), f"batch={batch}"

    def test_run_jobs_batched_grid_matches_serial(self):
        fft, sor = app_by_name("fft"), app_by_name("sor")
        grid = (
            [Job(spec=fft, config=MILD, fault_seed=seed) for seed in range(1, 6)]
            + [Job(spec=fft, config=MEDIUM, fault_seed=seed, task="stats") for seed in (1, 2)]
            + [Job(spec=sor, config=MILD, fault_seed=seed) for seed in (1, 2, 3)]
        )
        serial = run_jobs(grid)
        batched = run_jobs(grid, batch=4)
        assert canon(serial) == canon(batched)

    @pytest.mark.slow
    def test_run_jobs_pool_with_batch_matches_serial(self):
        spec = app_by_name("fft")
        grid = [Job(spec=spec, config=MILD, fault_seed=seed) for seed in range(1, 9)]
        serial = run_jobs(grid)
        pooled = run_jobs(grid, workers=2, batch=4)
        assert canon(serial) == canon(pooled)


@pytest.mark.slow
class TestExhaustiveGrid:
    """The full differential: every app at every approximation level."""

    @pytest.mark.parametrize("config", LEVELS)
    @pytest.mark.parametrize("app", [spec.name for spec in ALL_APPS])
    def test_app_level_cell(self, app, config):
        spec = app_by_name(app)
        seeds = (31, 32, 33)
        serial = serial_results(spec, config, seeds)
        batch = run_keys_batch(campaign_keys(spec, config, seeds))
        assert_results_identical(serial, batch, f"{app}/{config.name}")


def _trace_summary(result):
    """The store's compact trace summary (runner._store_trace_summary)."""
    counters = result.metrics.as_dict()["counters"]
    return {
        "events": len(result.events),
        "dropped": result.dropped,
        "counters": {kind: count for kind, count in counters.items() if count},
    }


@pytest.mark.slow
def test_fuzz_random_campaigns():
    """Random (app, level, seed-vector) campaigns, batch vs serial.

    Beyond the parametrized grid this varies the *shape* of a campaign:
    seed vectors of random length and content, so lockstep runs, partial
    divergences and fallbacks are all drawn blind.  QoS is compared by
    bit pattern and traces by their canonical JSON summary bytes.
    """
    rng = random.Random(0x20110604)  # PLDI'11, why not
    levels = [MILD, MEDIUM, AGGRESSIVE]
    for _ in range(5):
        spec = rng.choice(ALL_APPS)
        config = rng.choice(levels)
        seeds = rng.sample(range(1, 500), rng.randint(2, 4))
        context = f"{spec.name}/{config.name}/{seeds}"

        serial = [run_key(key) for key in campaign_keys(spec, config, seeds)]
        batch = run_keys_batch(campaign_keys(spec, config, seeds))
        assert_results_identical(serial, batch, context)

        reference = precise_output(spec, 0)
        serial_qos = [spec.qos(reference, result.output) for result in serial]
        batch_qos = [spec.qos(reference, result.output) for result in batch]
        assert canon(serial_qos) == canon(batch_qos), context

        serial_traces = [traced_run(spec, config, seed) for seed in seeds]
        batch_traces = traced_runs_batch(spec, config, seeds)
        for expected, got in zip(serial_traces, batch_traces):
            expected_bytes = json.dumps(_trace_summary(expected), sort_keys=True).encode()
            got_bytes = json.dumps(_trace_summary(got), sort_keys=True).encode()
            assert expected_bytes == got_bytes, context
