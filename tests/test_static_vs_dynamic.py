"""Tests for the static-vs-dynamic enforcement experiment."""

import pytest

from repro.apps import app_by_name
from repro.energy.model import SERVER, estimate_energy
from repro.experiments.harness import run_app
from repro.experiments.static_vs_dynamic import (
    TAG_STORAGE_OVERHEAD,
    _absolute_cost,
    _calibrate,
    dynamic_enforcement_stats,
    static_vs_dynamic_rows,
)
from repro.hardware.config import BASELINE, MEDIUM
from repro.runtime.stats import RunStats


@pytest.fixture(scope="module")
def mc_stats():
    return run_app(app_by_name("montecarlo"), BASELINE, 0, 0).stats


class TestMonitorCostModel:
    def test_tag_checks_added_as_precise_int_ops(self, mc_stats):
        monitored = dynamic_enforcement_stats(mc_stats)
        assert (
            monitored.int_ops_precise
            == mc_stats.int_ops_precise + mc_stats.ops_total
        )
        # Approximate op counts are untouched.
        assert monitored.fp_ops_approx == mc_stats.fp_ops_approx

    def test_tag_storage_inflates_byte_ticks(self, mc_stats):
        monitored = dynamic_enforcement_stats(mc_stats)
        expected = int(mc_stats.sram_approx_byte_ticks * (1 + TAG_STORAGE_OVERHEAD))
        assert monitored.sram_approx_byte_ticks == expected


class TestCalibration:
    def test_calibrated_model_reproduces_normalised_energy(self, mc_stats):
        """The absolute-cost model must agree with the Section 5.4 model
        on unmonitored runs — same stats, same config, same answer."""
        sram_unit, dram_unit = _calibrate(mc_stats, SERVER)
        baseline = _absolute_cost(mc_stats, BASELINE, SERVER, sram_unit, dram_unit)
        medium = _absolute_cost(mc_stats, MEDIUM, SERVER, sram_unit, dram_unit)
        normalised = medium / baseline
        reference = estimate_energy(mc_stats, MEDIUM, SERVER).total
        assert normalised == pytest.approx(reference, rel=1e-6)

    def test_zero_storage_run_does_not_crash(self):
        stats = RunStats(int_ops_precise=100)
        sram_unit, dram_unit = _calibrate(stats, SERVER)
        assert sram_unit == 0.0 and dram_unit == 0.0
        assert _absolute_cost(stats, BASELINE, SERVER, 0.0, 0.0) > 0


class TestHeadlineResult:
    def test_dynamic_monitor_erases_savings(self):
        """The paper's claim: dynamic checks consume the energy that
        approximation saves.  Under our monitor model the penalty
        exceeds the Medium-level savings for every application."""
        rows = static_vs_dynamic_rows(MEDIUM, apps=[app_by_name("sor"), app_by_name("fft")])
        for row in rows:
            assert row["static"] < 1.0  # static enforcement saves energy
            assert row["dynamic"] > row["static"]
            savings = 1.0 - row["static"]
            assert row["penalty"] > savings  # the monitor costs more than it saves

    def test_penalty_positive_for_all_apps(self):
        rows = static_vs_dynamic_rows(MEDIUM)
        assert all(row["penalty"] > 0 for row in rows)
