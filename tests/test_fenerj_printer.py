"""Round-trip tests for the FEnerJ pretty-printer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qualifiers import APPROX, PRECISE
from repro.fenerj.noninterference import random_program
from repro.fenerj.parser import parse_expression, parse_program
from repro.fenerj.printer import print_expression, print_program
from repro.fenerj.syntax import BinOp, IntLit, Program, Seq


class TestExpressionRoundTrip:
    CASES = [
        "null",
        "42",
        "3.5",
        "this",
        "x",
        "new C()",
        "new approx C()",
        "this.f",
        "this.a.b.c",
        "this.f := 1",
        "this.f := this.g := 2",
        "this.m()",
        "this.m(1, 2.5, this.f)",
        "1 + 2 * 3",
        "(1 + 2) * 3",
        "1 - 2 - 3",
        "1 - (2 - 3)",
        "1 + 1 == 2",
        "(approx int) this.f",
        "(approx int) (1 + 2)",
        "if (1 < 2) { 3 } else { 4 }",
        "1 ; 2 ; 3",
        "this.f := 1 ; this.g := 2 ; this.f",
        "endorse(this.a)",
        "endorse((approx int) 1 + (approx int) 2)",
    ]

    def test_cases_round_trip(self):
        for text in self.CASES:
            original = parse_expression(text)
            printed = print_expression(original)
            reparsed = parse_expression(printed)
            assert reparsed == original, f"{text!r} -> {printed!r}"

    def test_left_associativity_preserved(self):
        # 1 - 2 - 3 is (1-2)-3 = -4, not 1-(2-3) = 2.
        expr = parse_expression("1 - 2 - 3")
        assert parse_expression(print_expression(expr)) == expr
        wrapped = parse_expression("1 - (2 - 3)")
        assert parse_expression(print_expression(wrapped)) == wrapped
        assert wrapped != expr

    def test_negative_literals_parenthesised(self):
        expr = BinOp("+", IntLit(-1), IntLit(2))
        assert parse_expression(print_expression(expr)) == expr


class TestProgramRoundTrip:
    SOURCE = """
    class IntPair extends Object {
      context int x;
      approx float f;
      precise int get(precise int which) precise { this.x + which }
      approx int get(approx int which) approx { this.x }
    }
    main approx IntPair { this.get(3) ; this.x }
    """

    def test_hand_written_program(self):
        program = parse_program(self.SOURCE)
        printed = print_program(program)
        assert parse_program(printed) == program

    @given(st.integers(min_value=0, max_value=2000), st.booleans(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_generated_programs_round_trip(self, seed, main_approx, with_endorse):
        program = random_program(seed, main_approx=main_approx, with_endorse=with_endorse)
        printed = print_program(program)
        assert parse_program(printed) == program

    def test_printed_program_still_runs_identically(self):
        from repro.fenerj.interp import run_program

        program = random_program(7)
        reparsed = parse_program(print_program(program))
        original_result, _ = run_program(program)
        reparsed_result, _ = run_program(reparsed)
        assert original_result == reparsed_result
