"""Tests for the RunKey API: canonical digests, invalidation triggers,
the explicit workload-seed slot on AppSpec, and the backward-compatible
keyword wrappers.
"""

import dataclasses

import pytest

from repro.apps import app_by_name
from repro.experiments import Job, RunKey, harness
from repro.experiments.runkey import config_digest, config_fingerprint, source_digest
from repro.hardware.config import AGGRESSIVE, BASELINE, MEDIUM, ErrorMode

MC = dataclasses.replace(
    app_by_name("montecarlo"), name="MC@runkey-test", default_args=(400, 0)
)


def _write_app(tmp_path, body, name="tinyapp"):
    """A minimal on-disk EnerPy app whose source the test controls."""
    path = tmp_path / f"{name}.py"
    path.write_text(body)
    spec = app_by_name("montecarlo")
    return dataclasses.replace(
        spec,
        name=f"Tiny@{name}",
        # source_paths() joins against the apps dir; an absolute path
        # survives the join unchanged, so tests can point anywhere.
        module_files={"tiny": str(path)},
        entry_module="tiny",
        entry_function="main",
        default_args=(3, 0),
    )


TINY_SOURCE = """
def main(n: int, seed: int) -> float:
    total = 0.0
    for i in range(n):
        total = total + i + seed
    return total
"""


class TestDigest:
    def test_deterministic_across_instances(self):
        a = RunKey(spec=MC, config=MEDIUM, fault_seed=3, workload_seed=1)
        b = RunKey(spec=MC, config=MEDIUM, fault_seed=3, workload_seed=1)
        assert a is not b
        assert a.digest == b.digest
        assert len(a.digest) == 64
        assert set(a.digest) <= set("0123456789abcdef")

    @pytest.mark.parametrize(
        "change",
        [
            {"fault_seed": 4},
            {"workload_seed": 2},
            {"config": AGGRESSIVE},
        ],
    )
    def test_each_component_changes_digest(self, change):
        base = RunKey(spec=MC, config=MEDIUM, fault_seed=3, workload_seed=1)
        changed = dataclasses.replace(base, **change)
        assert base.digest != changed.digest

    def test_default_args_change_digest(self):
        smaller = dataclasses.replace(MC, default_args=(200, 0))
        a = RunKey(spec=MC, config=MEDIUM)
        b = RunKey(spec=smaller, config=MEDIUM)
        assert a.digest != b.digest

    def test_source_change_changes_digest(self, tmp_path):
        spec = _write_app(tmp_path, TINY_SOURCE)
        before = RunKey(spec=spec, config=MEDIUM).digest
        (tmp_path / "tinyapp.py").write_text(TINY_SOURCE + "\n# edited\n")
        edited = dataclasses.replace(spec, name="Tiny@edited")
        after = RunKey(spec=edited, config=MEDIUM).digest
        assert before != after

    def test_config_name_is_cosmetic(self):
        renamed = dataclasses.replace(MEDIUM, name="medium-renamed")
        a = RunKey(spec=MC, config=MEDIUM)
        b = RunKey(spec=MC, config=renamed)
        assert a.digest == b.digest

    def test_error_mode_is_semantic(self):
        flipped = MEDIUM.with_error_mode(ErrorMode.SINGLE_BIT_FLIP)
        assert (
            RunKey(spec=MC, config=MEDIUM).digest
            != RunKey(spec=MC, config=flipped).digest
        )

    def test_precise_reference(self):
        key = RunKey(spec=MC, config=AGGRESSIVE, fault_seed=7, workload_seed=2)
        reference = key.precise_reference()
        assert reference.config == BASELINE
        assert reference.fault_seed == 0
        assert reference.workload_seed == 2
        assert reference.spec is key.spec

    def test_metadata_names_digests(self):
        key = RunKey(spec=MC, config=MEDIUM, fault_seed=1)
        meta = key.metadata()
        assert meta["app"] == MC.name
        assert meta["source_digest"] == source_digest(MC)
        assert meta["config_digest"] == config_digest(MEDIUM)

    def test_config_fingerprint_excludes_name(self):
        fingerprint = config_fingerprint(MEDIUM)
        assert "name" not in fingerprint
        assert fingerprint["error_mode"] == "random"


class TestSeedSlot:
    def test_all_registered_apps_declare_their_slot(self):
        from repro.apps import ALL_APPS

        for spec in ALL_APPS:
            assert spec.workload_seed_index == len(spec.default_args) - 1
            assert spec.workload_args(99)[spec.seed_slot] == 99

    def test_workload_args_replaces_declared_slot(self):
        spec = dataclasses.replace(MC, default_args=(7, 400), workload_seed_index=0)
        assert spec.workload_args(5) == (5, 400)

    def test_negative_index_counts_from_end(self):
        assert MC.workload_seed_index == 1  # set explicitly in the registry
        legacy = dataclasses.replace(MC, workload_seed_index=-1)
        assert legacy.seed_slot == 1
        assert legacy.workload_args(9) == (400, 9)

    def test_empty_default_args_rejected(self):
        with pytest.raises(ValueError, match="workload-seed slot"):
            dataclasses.replace(MC, default_args=())

    def test_out_of_range_slot_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            dataclasses.replace(MC, workload_seed_index=2)

    def test_non_int_seed_default_rejected(self):
        with pytest.raises(ValueError, match="must default to an int"):
            dataclasses.replace(MC, default_args=(400, 1.5))

    def test_bool_seed_default_rejected(self):
        with pytest.raises(ValueError, match="must default to an int"):
            dataclasses.replace(MC, default_args=(400, True))

    def test_harness_workload_args_delegates(self):
        assert harness._workload_args(MC, 3) == MC.workload_args(3)


class TestCompatWrappers:
    def test_run_app_accepts_runkey(self):
        key = RunKey(spec=MC, config=BASELINE, workload_seed=1)
        via_key = harness.run_app(key)
        via_kwargs = harness.run_app(MC, BASELINE, 0, 1)
        assert via_key.output == via_kwargs.output
        assert via_key.stats == via_kwargs.stats

    def test_run_app_rejects_key_plus_config(self):
        key = RunKey(spec=MC, config=BASELINE)
        with pytest.raises(TypeError, match="part of the key"):
            harness.run_app(key, BASELINE)

    def test_run_app_requires_config_for_spec(self):
        with pytest.raises(TypeError, match="requires a HardwareConfig"):
            harness.run_app(MC)

    def test_qos_error_accepts_runkey(self):
        key = RunKey(spec=MC, config=MEDIUM, fault_seed=2)
        assert harness.qos_error(key) == harness.qos_error(MC, MEDIUM, 2, 0)

    def test_job_key_round_trip(self):
        job = Job(spec=MC, config=MEDIUM, fault_seed=5, workload_seed=1, task="stats")
        key = job.key
        assert (key.spec, key.config, key.fault_seed, key.workload_seed) == (
            MC,
            MEDIUM,
            5,
            1,
        )
        rebuilt = Job.from_key(key, task="stats")
        assert rebuilt == job

    def test_traced_run_accepts_runkey(self):
        from repro.observability.runner import traced_run

        key = RunKey(spec=MC, config=MEDIUM, fault_seed=1)
        via_key = traced_run(key)
        via_kwargs = traced_run(MC, MEDIUM, 1, 0)
        assert via_key.output == via_kwargs.output
        assert via_key.events == via_kwargs.events
