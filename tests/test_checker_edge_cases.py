"""Second round of checker tests: edge cases and less-travelled rules."""

import ast
import textwrap

from repro.core.checker import check_modules
from repro.core.qualifiers import APPROX, CONTEXT, PRECISE

PRELUDE = "from repro import Approx, Precise, Top, Context, approximable, endorse\n"


def check_src(source: str):
    return check_modules({"m": PRELUDE + textwrap.dedent(source)})


def codes(source: str):
    return sorted(set(check_src(source).codes()))


class TestConversions:
    def test_int_of_approx_float_stays_approx(self):
        assert "flow" in codes(
            """
            def f() -> int:
                a: Approx[float] = 1.5
                i: int = int(a)
                return i
            """
        )

    def test_int_of_approx_float_into_approx_ok(self):
        assert check_src(
            """
            def f() -> int:
                a: Approx[float] = 1.5
                i: Approx[int] = int(a)
                return endorse(i)
            """
        ).ok

    def test_float_of_string_is_precise(self):
        assert check_src(
            """
            def f() -> float:
                return float("nan")
            """
        ).ok

    def test_bool_of_approx_is_approx(self):
        assert "condition" in codes(
            """
            def f() -> None:
                a: Approx[int] = 1
                if bool(a):
                    pass
            """
        )


class TestControlFlowVariants:
    def test_while_else_checked(self):
        assert check_src(
            """
            def f() -> int:
                i: int = 0
                while i < 3:
                    i = i + 1
                else:
                    i = 0
                return i
            """
        ).ok

    def test_break_continue_allowed(self):
        assert check_src(
            """
            def f() -> int:
                total: int = 0
                for i in range(10):
                    if i == 3:
                        continue
                    if i == 7:
                        break
                    total = total + i
                return total
            """
        ).ok

    def test_boolop_of_endorsed_conditions_ok(self):
        assert check_src(
            """
            def f() -> int:
                a: Approx[int] = 1
                if endorse(a > 0) and endorse(a < 10):
                    return 1
                return 0
            """
        ).ok

    def test_approx_boolop_in_condition_rejected(self):
        assert "condition" in codes(
            """
            def f() -> None:
                a: Approx[int] = 1
                flag: Approx[bool] = a > 0
                other: Approx[bool] = a < 9
                if flag and other:
                    pass
            """
        )

    def test_not_preserves_approximation(self):
        assert "condition" in codes(
            """
            def f() -> None:
                a: Approx[int] = 1
                if not (a > 0):
                    pass
            """
        )

    def test_try_except_supported(self):
        assert check_src(
            """
            def f() -> int:
                try:
                    x: int = 1
                except Exception:
                    x = 2
                return x
            """
        ).ok


class TestFunctionsAndReturns:
    def test_void_function_returning_approx_rejected(self):
        assert "flow" in codes(
            """
            def f() -> None:
                a: Approx[int] = 1
                return a
            """
        )

    def test_missing_return_value_rejected(self):
        assert "return-type" in codes(
            """
            def f() -> int:
                return
            """
        )

    def test_recursion_through_approx_signature(self):
        assert check_src(
            """
            def fib(n: int) -> Approx[int]:
                if n < 2:
                    return n
                return fib(n - 1) + fib(n - 2)
            """
        ).ok

    def test_nested_function_rejected(self):
        assert "unsupported" in codes(
            """
            def outer() -> None:
                def inner() -> None:
                    pass
            """
        )

    def test_star_args_rejected(self):
        assert "unsupported" in codes(
            """
            def f(*xs) -> None:
                pass
            """
        )

    def test_keyword_call_rejected(self):
        assert "unsupported" in codes(
            """
            def g(x: int) -> None:
                pass

            def f() -> None:
                g(x=1)
            """
        )


class TestTuplesAndDynamic:
    def test_precise_tuple_unpack_tolerated(self):
        assert check_src(
            """
            def f() -> None:
                a, b = (1, 2)
            """
        ).ok

    def test_approx_in_tuple_rejected(self):
        assert "unsupported" in codes(
            """
            def f() -> None:
                a: Approx[int] = 1
                pair = (a, 2)
            """
        )

    def test_dynamic_call_with_precise_args_ok(self):
        assert check_src(
            """
            def f() -> None:
                mystery_function(1, 2.0, "three")
            """
        ).ok

    def test_string_operations_precise(self):
        assert check_src(
            """
            def f() -> str:
                s: str = "a" + "b"
                return s
            """
        ).ok


class TestClassEdgeCases:
    def test_inherited_approximable_fields(self):
        source = """
        @approximable
        class Base:
            x: Context[int]

            def __init__(self) -> None:
                self.x = 0

        @approximable
        class Derived(Base):
            y: Approx[int]

        def use() -> int:
            d: Approx[Derived] = Derived()
            v: Approx[int] = d.x + d.y
            return endorse(v)
        """
        result = check_src(source)
        assert result.ok, result.sink.summary()

    def test_method_on_subclass_found_in_superclass(self):
        source = """
        class Base:
            def m(self) -> int:
                return 1

        class Derived(Base):
            pass

        def use() -> int:
            d: Derived = Derived()
            return d.m()
        """
        assert check_src(source).ok

    def test_subclass_assignable_to_superclass(self):
        source = """
        class Base:
            def m(self) -> int:
                return 1

        class Derived(Base):
            pass

        def use() -> int:
            b: Base = Derived()
            return b.m()
        """
        assert check_src(source).ok

    def test_superclass_not_assignable_to_subclass(self):
        source = """
        class Base:
            def m(self) -> int:
                return 1

        class Derived(Base):
            pass

        def use() -> None:
            d: Derived = Base()
        """
        assert "incompatible" in set(check_src(source).codes())

    def test_field_read_of_method_name(self):
        source = """
        class C:
            def m(self) -> int:
                return 1

        def use() -> None:
            c: C = C()
            handle = c.m
        """
        # Reading a bound method is tolerated as dynamic/precise.
        assert check_src(source).ok


class TestNumericWidening:
    def test_int_flows_into_float(self):
        assert check_src(
            """
            def f() -> float:
                x: float = 3
                return x
            """
        ).ok

    def test_float_does_not_flow_into_int(self):
        assert "incompatible" in codes(
            """
            def f() -> int:
                x: int = 3.5
                return x
            """
        )

    def test_approx_int_flows_into_approx_float(self):
        assert check_src(
            """
            def f() -> float:
                a: Approx[int] = 3
                x: Approx[float] = a
                return endorse(x)
            """
        ).ok

    def test_mixed_arithmetic_promotes_to_float(self):
        result = check_src(
            """
            def f() -> float:
                return 1 + 2.5
            """
        )
        assert result.ok


class TestEndorseEdgeCases:
    def test_endorse_of_array_endorses_elements(self):
        assert check_src(
            """
            def f() -> None:
                arr: list[Approx[float]] = [0.0] * 4
                precise_arr: list[float] = endorse(arr)
            """
        ).ok

    def test_endorse_arity(self):
        assert "arity" in codes(
            """
            def f() -> None:
                x = endorse(1, 2)
            """
        )

    def test_endorse_of_precise_is_harmless(self):
        assert check_src(
            """
            def f() -> int:
                return endorse(5)
            """
        ).ok

    def test_print_endorsed_ok(self):
        assert check_src(
            """
            def f() -> None:
                a: Approx[int] = 1
                print(endorse(a))
            """
        ).ok


class TestFactEmission:
    """The instrumentation facts the flow graph consumes (ANALYSIS.md).

    Facts are keyed by AST node identity, so these tests walk the
    checked module tree and assert the fact landed on the *right* node
    with the right shape — the contract ``repro.analysis.flowgraph``
    builds on.
    """

    def _checked(self, source: str):
        result = check_src(source)
        assert result.ok, result.codes()
        return result

    @staticmethod
    def _nodes(result, kind):
        return [n for n in ast.walk(result.modules["m"]) if isinstance(n, kind)]

    def test_augmented_assignment_emits_binop_on_statement(self):
        result = self._checked(
            """
            def f() -> None:
                x: Approx[int] = 1
                x += 2
            """
        )
        (aug,) = self._nodes(result, ast.AugAssign)
        fact = result.facts[id(aug)]
        assert fact == {"role": "binop", "op": "add", "kind": "int", "approx": True}
        # The target records the implicit read of the old value (the
        # last fact on the Name node; the store precedes it).
        assert result.facts[id(aug.target)] == {
            "role": "local-load",
            "kind": "int",
            "approx": True,
            "name": "x",
        }

    def test_ternary_emits_compare_endorse_and_store_facts(self):
        result = self._checked(
            """
            def f() -> None:
                a: Approx[int] = 1
                b: Approx[int] = 2
                c: Approx[int] = a if endorse(a > b) else b
            """
        )
        (compare,) = self._nodes(result, ast.Compare)
        fact = result.facts[id(compare)]
        assert fact["role"] == "compare"
        assert fact["op"] == "gt"
        assert fact["approx"] is True
        endorse_calls = [
            n
            for n in self._nodes(result, ast.Call)
            if isinstance(n.func, ast.Name) and n.func.id == "endorse"
        ]
        (endorse_call,) = endorse_calls
        assert result.facts[id(endorse_call)] == {"role": "endorse"}
        stores = [
            f
            for f in result.facts.values()
            if f.get("role") == "local-store" and f.get("name") == "c"
        ]
        assert stores and all(f["approx"] is True for f in stores)

    def test_approx_dispatch_emits_invoke_fact_on_call_node(self):
        result = self._checked(
            """
            @approximable
            class FloatSet:
                nums: Context[list[float]]

                def __init__(self, nums: Context[list[float]]) -> None:
                    self.nums = nums

                def mean(self) -> float:
                    total: float = 0.0
                    for i in range(len(self.nums)):
                        total = total + self.nums[i]
                    return total / len(self.nums)

                def mean_APPROX(self) -> Approx[float]:
                    total: Approx[float] = 0.0
                    for i in range(0, len(self.nums), 2):
                        total = total + self.nums[i]
                    return 2 * total / len(self.nums)

            def use() -> float:
                s: Approx[FloatSet] = FloatSet([1.0] * 8)
                m: Approx[float] = s.mean()
                return endorse(m)
            """
        )
        calls = [
            n
            for n in self._nodes(result, ast.Call)
            if isinstance(n.func, ast.Attribute) and n.func.attr == "mean"
        ]
        (call,) = calls
        assert result.facts[id(call)] == {
            "role": "invoke",
            "dispatch": "approx",
            "method": "mean",
        }

    def test_context_receiver_dispatch_is_context(self):
        result = self._checked(
            """
            @approximable
            class FloatSet:
                nums: Context[list[float]]

                def __init__(self, nums: Context[list[float]]) -> None:
                    self.nums = nums

                def head(self) -> Context[float]:
                    return self.nums[0]

                def head_APPROX(self) -> Approx[float]:
                    return self.nums[0]

                def twice_head(self) -> Context[float]:
                    return 2.0 * self.head()
            """
        )
        calls = [
            n
            for n in self._nodes(result, ast.Call)
            if isinstance(n.func, ast.Attribute) and n.func.attr == "head"
        ]
        (call,) = calls
        assert result.facts[id(call)] == {
            "role": "invoke",
            "dispatch": "context",
            "method": "head",
        }

    def test_endorse_inside_subscript_index(self):
        result = self._checked(
            """
            def f() -> float:
                arr: list[float] = [0.0] * 8
                i: Approx[int] = 3
                return arr[endorse(i)]
            """
        )
        endorse_calls = [
            n
            for n in self._nodes(result, ast.Call)
            if isinstance(n.func, ast.Name) and n.func.id == "endorse"
        ]
        (endorse_call,) = endorse_calls
        assert result.facts[id(endorse_call)] == {"role": "endorse"}
        # `list[float]` in the annotation is also an ast.Subscript; only
        # the actual array access carries the fact.
        subscript_facts = [
            result.facts[id(n)]
            for n in self._nodes(result, ast.Subscript)
            if id(n) in result.facts
        ]
        (fact,) = subscript_facts
        assert fact["role"] == "subscript"

    def test_approx_index_without_endorse_rejected(self):
        assert "subscript" in codes(
            """
            def f() -> float:
                arr: list[float] = [0.0] * 8
                i: Approx[int] = 3
                return arr[i]
            """
        )
